// Package train runs real CPU training of (split or unsplit) models for
// the accuracy experiments of §5: SGD with momentum and weight decay, a
// step learning-rate schedule, per-minibatch stochastic re-splitting
// (§3.3), and test-error evaluation — on the unsplit network for
// Stochastic Split-CNN, matching the paper's deployment story.
package train

import (
	"fmt"
	"math/rand"
	"time"

	"splitcnn/internal/autotune"
	"splitcnn/internal/core"
	"splitcnn/internal/costmodel"
	"splitcnn/internal/data"
	"splitcnn/internal/graph"
	"splitcnn/internal/models"
	"splitcnn/internal/nn"
	"splitcnn/internal/sim"
	"splitcnn/internal/snapshot"
	"splitcnn/internal/tensor"
	"splitcnn/internal/trace"
)

// SGD is stochastic gradient descent with momentum and (decoupled from
// BN/bias parameters) L2 weight decay.
type SGD struct {
	LR, Momentum, WeightDecay float64
}

// Step applies one update to every parameter in the store.
func (s *SGD) Step(store *graph.ParamStore) {
	lr := float32(s.LR)
	mu := float32(s.Momentum)
	wd := float32(s.WeightDecay)
	for _, p := range store.All() {
		if p.Frozen {
			continue
		}
		g, v, w := p.Grad.Data(), p.Velocity.Data(), p.Value.Data()
		decay := wd
		if p.NoDecay {
			decay = 0
		}
		for i := range w {
			gi := g[i] + decay*w[i]
			v[i] = mu*v[i] + gi
			w[i] -= lr * v[i]
		}
	}
}

// Config describes one training run.
type Config struct {
	// Arch selects the model ("vgg19", "resnet18", ...).
	Arch string
	// Model carries width divisor, BN options etc. Input geometry and
	// class count are taken from the dataset.
	Model models.Config
	// BatchSize is the minibatch size; Epochs the training duration.
	BatchSize, Epochs int
	// LR, Momentum, WeightDecay follow the paper's recipes.
	LR, Momentum, WeightDecay float64
	// LRDecayEpochs lists epochs at which the rate drops by 10x.
	LRDecayEpochs []int
	// Split configures the Split-CNN transformation; a zero Depth or a
	// 1x1 grid trains the unmodified baseline. Stochastic splitting
	// resamples boundaries every minibatch.
	Split core.Config
	// EvalUnsplit evaluates test error on the original unsplit network
	// (the SSCNN deployment mode); otherwise evaluation uses the same
	// (deterministically split) architecture that was trained.
	EvalUnsplit bool
	// RecalibrateBN refreshes batch-normalization running statistics by
	// forward passes through the *unsplit* train-mode graph before each
	// unsplit evaluation. During stochastic split training the running
	// estimates accumulate per-patch statistics, which mismatch the
	// whole-feature-map statistics the unsplit network sees; a short
	// recalibration pass (standard practice when deploying BN models
	// under a different execution scheme) removes that artifact.
	// Defaults on when EvalUnsplit is set.
	RecalibrateBN *bool
	// CompiledEval runs the per-epoch test evaluation through
	// graph.Compile's static program (fused inference rewrites plus a
	// fixed-offset memory plan) instead of the interpreted arena
	// executor. Results are bit-identical either way.
	CompiledEval bool
	// Tune autotunes the convolution backends on the training and
	// evaluation graphs' shapes before the first step, so every forward
	// dispatches to the measured-fastest kernel. With stochastic
	// splitting only the base (unsplit) shapes are tuned — per-minibatch
	// boundary shapes are transient and fall back to the default
	// heuristic. TuneCache optionally persists the plans across runs.
	Tune      bool
	TuneCache string
	Seed      int64
	// Progress, when non-nil, receives one line per epoch.
	Progress func(epoch int, trainLoss, testErr float64)
	// Recorder, when non-nil, receives one "compute"-stream span per
	// executed op of every training step, timed with the wall clock on
	// one continuous timeline. Op names match the serialized program's
	// ("conv1", "conv1.bwd"), so a measured CPU trace diffs directly
	// against a simulated one.
	Recorder trace.Recorder
	// Metrics, when non-nil, accumulates training instrumentation:
	// exec.ops / exec.output_bytes counters, the exec.op_seconds and
	// train.step_seconds histograms, and per-epoch train.loss /
	// train.test_error gauges.
	Metrics *trace.Metrics
	// LoadPath, when set, restores a weight snapshot (parameters + BN
	// running statistics) before training starts; SavePath writes one
	// after the final epoch — the artifact `splitcnn serve` loads.
	LoadPath, SavePath string
	// StepLog, when non-nil, receives one telemetry record per optimizer
	// step (loss, gradient/parameter L2 norms, learning rate, images/s,
	// step wall time, arena footprint) plus one rollup per epoch — the
	// JSONL stream behind `splitcnn train -steplog`. The caller owns the
	// sink (and its Close).
	StepLog *trace.StepLog
	// Guard arms the anomaly guards and flight recorder; see GuardConfig.
	Guard GuardConfig
	// AfterStep, when non-nil, runs after each optimizer update with the
	// global 1-based step number and the live parameter store — an
	// observability/testing seam (the guard tests use it to inject
	// corrupted parameters mid-run).
	AfterStep func(step int, store *graph.ParamStore)
	// Calibrate, when non-nil and the graph is fixed (non-stochastic),
	// compares the measured per-op wall-clock collected by the executor
	// hook against this device's cost model after the run, publishing
	// calib.op_drift_ratio.* gauges into Metrics and Result.Drift — the
	// plan-vs-actual signal that shows when the planner's cost model has
	// drifted from the real engine. Requires Metrics.
	Calibrate *costmodel.DeviceSpec
}

// Result reports a completed run.
type Result struct {
	// TestErr is the per-epoch test error (fraction in [0, 1]).
	TestErr []float64
	// TrainLoss is the per-epoch mean training loss.
	TrainLoss []float64
	// FinalTestErr is TestErr's last entry.
	FinalTestErr float64
	// SplitConvs/TotalConvs report the realized splitting depth.
	SplitConvs, TotalConvs int
	// Drift is the plan-vs-actual calibration report (nil unless
	// Config.Calibrate ran).
	Drift *sim.DriftReport
}

// Run trains per cfg on ds and returns learning curves.
func Run(cfg Config, ds *data.Dataset) (*Result, error) {
	if cfg.BatchSize <= 0 || cfg.Epochs <= 0 {
		return nil, fmt.Errorf("train: batch %d / epochs %d invalid", cfg.BatchSize, cfg.Epochs)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	mcfg := cfg.Model
	mcfg.BatchSize = cfg.BatchSize
	mcfg.Classes = ds.Cfg.Classes
	mcfg.InputC, mcfg.InputH, mcfg.InputW = ds.Cfg.C, ds.Cfg.H, ds.Cfg.W
	base, err := models.Build(cfg.Arch, mcfg)
	if err != nil {
		return nil, err
	}
	store := graph.NewParamStore()
	store.InitFromGraph(base.Graph, rng, nn.KaimingInit)
	if cfg.LoadPath != "" {
		if err := snapshot.LoadFile(cfg.LoadPath, store, base.BNStates); err != nil {
			return nil, fmt.Errorf("train: load snapshot: %w", err)
		}
	}

	split := cfg.Split
	if split.NH == 0 {
		split.NH = 1
	}
	if split.NW == 0 {
		split.NW = 1
	}
	splitting := split.Depth > 0 && split.NH*split.NW > 1
	if split.Stochastic && split.Rng == nil {
		split.Rng = rng
	}

	res := &Result{TotalConvs: base.ConvCount()}

	// For deterministic splits the graph is fixed; stochastic splits
	// rebuild per minibatch.
	var trainGraph *graph.Graph
	buildTrain := func() (*graph.Graph, error) {
		if !splitting {
			return base.Graph, nil
		}
		sr, err := core.Split(base.Graph, split)
		if err != nil {
			return nil, err
		}
		res.SplitConvs = sr.SplitConvs
		// New per-patch conv instances may exist, but parameters are
		// shared by name; nothing new to initialize.
		store.InitFromGraph(sr.Graph, rng, nn.KaimingInit)
		return sr.Graph, nil
	}
	if !split.Stochastic {
		if trainGraph, err = buildTrain(); err != nil {
			return nil, err
		}
	}

	// Evaluation graph: eval-mode BN; unsplit for SSCNN, split for SCNN.
	evalBatch := min(cfg.BatchSize, ds.Cfg.TestN)
	ecfg := mcfg
	ecfg.BatchSize = evalBatch
	ecfg.Eval = true
	ecfg.BNStates = base.BNStates
	evalModel, err := models.Build(cfg.Arch, ecfg)
	if err != nil {
		return nil, err
	}
	evalGraph := evalModel.Graph
	if splitting && !cfg.EvalUnsplit && !split.Stochastic {
		esr, err := core.Split(evalModel.Graph, split)
		if err != nil {
			return nil, err
		}
		evalGraph = esr.Graph
	}
	store.InitFromGraph(evalGraph, rng, nn.KaimingInit)

	// Autotune on the exact shapes the run will execute: the (possibly
	// split) training graph plus the evaluation graph's batch size.
	// Stochastic runs tune the base graph — its shapes recur whenever a
	// layer happens to stay unsplit.
	if cfg.Tune {
		if cfg.TuneCache != "" {
			if err := autotune.Default.Load(cfg.TuneCache); err != nil {
				return nil, fmt.Errorf("train: tune cache: %w", err)
			}
		}
		tg := trainGraph
		if tg == nil {
			tg = base.Graph
		}
		autotune.Default.TuneGraph(tg)
		autotune.Default.TuneGraph(evalGraph)
		if cfg.TuneCache != "" {
			if err := autotune.Default.Save(); err != nil {
				return nil, fmt.Errorf("train: tune cache: %w", err)
			}
		}
	}

	// Observability: one shared hook base keeps the per-step executors'
	// spans on a single continuous timeline. The same hook feeds the
	// trace recorder, the exec.* metrics, the flight recorder's op-span
	// ring, the guards' sampled output scan, and the plan-vs-actual
	// calibration accumulator; globalStep is read by the hook closure so
	// flight spans attribute to the step they ran in.
	var gs *guardState
	if cfg.Guard.Enabled {
		gs = newGuardState(cfg.Guard, cfg.Metrics)
	}
	var calib map[string]sim.OpSample
	if cfg.Calibrate != nil && !split.Stochastic {
		calib = make(map[string]sim.OpSample)
	}
	globalStep := 0
	var hook graph.OpHook
	var hookBase time.Time
	if cfg.Recorder != nil || cfg.Metrics != nil || gs != nil || calib != nil {
		hookBase = time.Now()
		hook = func(ev graph.OpEvent) {
			name := ev.Name
			if ev.Backward {
				name += ".bwd"
			}
			if cfg.Recorder != nil {
				cfg.Recorder.Span("compute", name, ev.Start, ev.Start+ev.Dur)
			}
			if cfg.Metrics != nil {
				cfg.Metrics.Counter("exec.ops").Add(1)
				cfg.Metrics.Counter("exec.output_bytes").Add(ev.OutputBytes)
				cfg.Metrics.Histogram("exec.op_seconds", trace.LatencyBuckets).Observe(ev.Dur)
			}
			if gs != nil {
				gs.flight.RecordSpan(trace.OpSpan{Name: name, Step: globalStep + 1, Start: ev.Start, Dur: ev.Dur})
				gs.scan(name, ev)
			}
			if calib != nil {
				s := calib[name]
				s.Seconds += ev.Dur
				s.Count++
				calib[name] = s
			}
		}
	}

	opt := &SGD{LR: cfg.LR, Momentum: cfg.Momentum, WeightDecay: cfg.WeightDecay}
	steps := ds.Cfg.TrainN / cfg.BatchSize
	if steps == 0 {
		return nil, fmt.Errorf("train: dataset smaller than one batch")
	}

	recalibrate := cfg.EvalUnsplit && splitting
	if cfg.RecalibrateBN != nil {
		recalibrate = *cfg.RecalibrateBN && splitting
	}

	// One arena and one set of batch buffers serve the whole run. With a
	// fixed graph the executor is built once too, so the steady-state
	// step allocates nothing; stochastic splitting rebuilds graph and
	// executor per minibatch but keeps recycling through the same arena.
	arena := tensor.NewArena()
	batchX := tensor.New(cfg.BatchSize, ds.Cfg.C, ds.Cfg.H, ds.Cfg.W)
	batchY := tensor.New(cfg.BatchSize)
	feeds := graph.Feeds{"image": batchX, "labels": batchY}
	var trainEx *graph.Executor
	if !split.Stochastic {
		if trainEx, err = graph.NewExecutor(trainGraph, store); err != nil {
			return nil, err
		}
		trainEx.UseArena(arena)
		trainEx.Hook, trainEx.HookBase = hook, hookBase
	}

	// recalibrateBN refreshes the shared running statistics with
	// whole-feature-map batches through the unsplit train-mode graph.
	recalibrateBN := func(perm []int) error {
		ex, err := graph.NewExecutor(base.Graph, store)
		if err != nil {
			return err
		}
		ex.UseArena(arena)
		passes := min(8, steps)
		for s := 0; s < passes; s++ {
			ds.BatchInto(batchX, batchY, true, perm[s*cfg.BatchSize:(s+1)*cfg.BatchSize])
			if _, err := ex.Forward(feeds); err != nil {
				return err
			}
		}
		ex.Recycle()
		return nil
	}

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		opt.LR = cfg.LR
		for _, de := range cfg.LRDecayEpochs {
			if epoch >= de {
				opt.LR /= 10
			}
		}
		perm := ds.Shuffled(rng)
		var lossSum float64
		epochStart := time.Now()
		for s := 0; s < steps; s++ {
			ex := trainEx
			if split.Stochastic {
				g, err := buildTrain()
				if err != nil {
					return nil, err
				}
				if ex, err = graph.NewExecutor(g, store); err != nil {
					return nil, err
				}
				ex.UseArena(arena)
				ex.Hook, ex.HookBase = hook, hookBase
			}
			stepStart := time.Now()
			ds.BatchInto(batchX, batchY, true, perm[s*cfg.BatchSize:(s+1)*cfg.BatchSize])
			store.ZeroGrads()
			outs, err := ex.Forward(feeds)
			if err != nil {
				return nil, err
			}
			loss := float64(outs[0].Data()[0])
			lossSum += loss
			if err := ex.Backward(); err != nil {
				return nil, err
			}
			opt.Step(store)
			if split.Stochastic {
				// The executor dies with this step; hand its buffers back
				// so the next minibatch's graph reuses them.
				ex.Recycle()
			}
			globalStep++
			stepSecs := time.Since(stepStart).Seconds()
			// Step telemetry: the norms pass runs only when someone
			// consumes it (steplog, guards, or metrics).
			var gradNorm, paramNorm float64
			if cfg.StepLog != nil || gs != nil || cfg.Metrics != nil {
				gradNorm, paramNorm = Norms(store)
			}
			if cfg.StepLog != nil || gs != nil {
				rec := trace.StepRecord{
					Step: globalStep, Epoch: epoch, Loss: loss,
					GradNorm: gradNorm, ParamNorm: paramNorm, LR: opt.LR,
					ImagesPerSec: rate(cfg.BatchSize, stepSecs), StepSeconds: stepSecs,
					ArenaInUseBytes: arena.Stats().InUseBytes,
				}
				if cfg.StepLog != nil {
					if err := cfg.StepLog.Step(rec); err != nil {
						return nil, err
					}
				}
				if gs != nil {
					gs.flight.RecordStep(rec)
				}
			}
			if cfg.Metrics != nil {
				cfg.Metrics.Counter("train.steps").Add(1)
				cfg.Metrics.Counter("train.samples").Add(int64(cfg.BatchSize))
				cfg.Metrics.Histogram("train.step_seconds", trace.LatencyBuckets).Observe(stepSecs)
				cfg.Metrics.Gauge("train.grad_norm").Set(gradNorm)
				cfg.Metrics.Gauge("train.param_norm").Set(paramNorm)
				cfg.Metrics.Gauge("train.lr").Set(opt.LR)
				cfg.Metrics.Gauge("train.images_per_sec").Set(rate(cfg.BatchSize, stepSecs))
				arena.Stats().Record("arena", cfg.Metrics)
			}
			if gs != nil {
				if err := gs.check(globalStep, loss, gradNorm, store); err != nil {
					return nil, err
				}
			}
			if cfg.AfterStep != nil {
				cfg.AfterStep(globalStep, store)
			}
		}
		epochSecs := time.Since(epochStart).Seconds()
		if recalibrate && cfg.EvalUnsplit {
			if err := recalibrateBN(perm); err != nil {
				return nil, err
			}
		}
		evaluate := Evaluate
		if cfg.CompiledEval {
			evaluate = EvaluateCompiled
		}
		testErr, err := evaluate(evalGraph, evalModel, store, ds)
		if err != nil {
			return nil, err
		}
		// safeMean keeps a zero-step epoch (unreachable today — Run
		// rejects datasets smaller than one batch up front — but cheap
		// insurance against refactors) from poisoning the train.loss
		// gauge and the steplog with NaN.
		meanLoss := safeMean(lossSum, steps)
		res.TrainLoss = append(res.TrainLoss, meanLoss)
		res.TestErr = append(res.TestErr, testErr)
		if cfg.Metrics != nil {
			cfg.Metrics.Gauge("train.loss").Set(meanLoss)
			cfg.Metrics.Gauge("train.test_error").Set(testErr)
			cfg.Metrics.Counter("train.epochs").Add(1)
		}
		if cfg.StepLog != nil {
			if err := cfg.StepLog.Epoch(trace.EpochRecord{
				Epoch: epoch, Steps: steps, MeanLoss: meanLoss, TestError: testErr,
				LR: opt.LR, EpochSeconds: epochSecs,
				ImagesPerSec: rate(steps*cfg.BatchSize, epochSecs),
			}); err != nil {
				return nil, err
			}
		}
		if cfg.Progress != nil {
			cfg.Progress(epoch, meanLoss, testErr)
		}
	}
	res.FinalTestErr = res.TestErr[len(res.TestErr)-1]
	if len(calib) > 0 {
		rep, err := sim.DriftFromMeasured(trainGraph, *cfg.Calibrate, calib)
		if err != nil {
			return nil, fmt.Errorf("train: calibration: %w", err)
		}
		res.Drift = rep
		if cfg.Metrics != nil {
			rep.RecordMetrics(cfg.Metrics)
		}
	}
	if cfg.SavePath != "" {
		if err := snapshot.SaveFile(cfg.SavePath, store, base.BNStates); err != nil {
			return nil, fmt.Errorf("train: save snapshot: %w", err)
		}
	}
	return res, nil
}

// Evaluate computes classification error of the model graph (whose
// logits node must be named like evalModel.Logits) over the test split.
func Evaluate(g *graph.Graph, m *models.Model, store *graph.ParamStore, ds *data.Dataset) (float64, error) {
	batch := m.Input.Shape.N()
	logitsName := m.Logits.Name
	logitsNode := g.FindNode(logitsName)
	if logitsNode == nil {
		// Split graphs may have joined the logits under a ".join" name.
		if logitsNode = g.FindNode(logitsName + ".join"); logitsNode == nil {
			return 0, fmt.Errorf("train: logits node %q not found", logitsName)
		}
	}
	// Keep the logits alive past the forward pass: graph outputs are
	// never released by the executor.
	keep := false
	for _, o := range g.Outputs {
		if o == logitsNode {
			keep = true
		}
	}
	if !keep {
		g.SetOutput(append(g.Outputs, logitsNode)...)
	}
	// One executor and one arena serve every test batch; logits are graph
	// outputs, so they stay readable until the next Forward recycles them.
	ex, err := graph.NewExecutor(g, store)
	if err != nil {
		return 0, err
	}
	ex.UseArena(tensor.NewArena())
	x := tensor.New(batch, ds.Cfg.C, ds.Cfg.H, ds.Cfg.W)
	labels := tensor.New(batch)
	feeds := graph.Feeds{"image": x, "labels": labels}
	idx := make([]int, batch)
	wrong, total := 0, 0
	for off := 0; off+batch <= ds.Cfg.TestN; off += batch {
		for i := range idx {
			idx[i] = off + i
		}
		ds.BatchInto(x, labels, false, idx)
		if _, err := ex.Forward(feeds); err != nil {
			return 0, err
		}
		logits := ex.Value(logitsNode)
		if logits == nil {
			return 0, fmt.Errorf("train: logits released before evaluation")
		}
		pred := tensor.ArgmaxRow(logits)
		for i, p := range pred {
			if p != int(labels.Data()[i]) {
				wrong++
			}
			total++
		}
	}
	if total == 0 {
		return 0, fmt.Errorf("train: empty test set")
	}
	return float64(wrong) / float64(total), nil
}

// EvaluateCompiled is Evaluate over graph.Compile's static program: the
// eval graph is lowered once (inference rewrites + fixed-offset memory
// plan) and every test batch replays it. Logits — and therefore the
// reported error — are bit-identical to Evaluate's.
func EvaluateCompiled(g *graph.Graph, m *models.Model, store *graph.ParamStore, ds *data.Dataset) (float64, error) {
	batch := m.Input.Shape.N()
	logitsName := m.Logits.Name
	logitsNode := g.FindNode(logitsName)
	if logitsNode == nil {
		if logitsNode = g.FindNode(logitsName + ".join"); logitsNode == nil {
			return 0, fmt.Errorf("train: logits node %q not found", logitsName)
		}
	}
	// The compiled program copies out exactly the graph outputs; make
	// sure the logits are one of them and remember which.
	logitsIdx := -1
	for i, o := range g.Outputs {
		if o == logitsNode {
			logitsIdx = i
		}
	}
	if logitsIdx < 0 {
		g.SetOutput(append(g.Outputs, logitsNode)...)
		logitsIdx = len(g.Outputs) - 1
	}
	prog, err := graph.Compile(g, store, graph.CompileOptions{})
	if err != nil {
		return 0, err
	}
	x := tensor.New(batch, ds.Cfg.C, ds.Cfg.H, ds.Cfg.W)
	labels := tensor.New(batch)
	feeds := graph.Feeds{"image": x, "labels": labels}
	idx := make([]int, batch)
	wrong, total := 0, 0
	for off := 0; off+batch <= ds.Cfg.TestN; off += batch {
		for i := range idx {
			idx[i] = off + i
		}
		ds.BatchInto(x, labels, false, idx)
		outs, err := prog.Forward(feeds)
		if err != nil {
			return 0, err
		}
		pred := tensor.ArgmaxRow(outs[logitsIdx])
		for i, p := range pred {
			if p != int(labels.Data()[i]) {
				wrong++
			}
			total++
		}
	}
	if total == 0 {
		return 0, fmt.Errorf("train: empty test set")
	}
	return float64(wrong) / float64(total), nil
}
