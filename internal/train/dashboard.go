package train

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"splitcnn/internal/buildinfo"
	"splitcnn/internal/memobs"
	"splitcnn/internal/trace"
)

// Dashboard is the trainer's live HTTP endpoint (`splitcnn train
// -listen`): the serving stack's content-negotiated /metricsz and
// /healthz surfaces over the trainer's metrics registry, gated pprof,
// and a self-refreshing HTML page at / that shows the run's loss, step
// rate and gradient health while it trains.
type Dashboard struct {
	ln      net.Listener
	srv     *http.Server
	prof    *memobs.Profiler
	started time.Time
}

// StartDashboard listens on addr (e.g. "127.0.0.1:0" for a random
// port) and serves met in a background goroutine. Quantile gauges
// (train.step_p50_seconds/p99, exec.op_p50_seconds/p99) are refreshed
// at scrape time from the corresponding histograms.
func StartDashboard(addr string, met *trace.Metrics, enablePprof bool) (*Dashboard, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	d := &Dashboard{ln: ln, started: time.Now()}
	mux := http.NewServeMux()
	mux.HandleFunc("/metricsz", trace.MetricsHandler(met, func(m *trace.Metrics) {
		step := m.Histogram("train.step_seconds", trace.LatencyBuckets)
		m.Gauge("train.step_p50_seconds").Set(step.Quantile(0.5))
		m.Gauge("train.step_p99_seconds").Set(step.Quantile(0.99))
		op := m.Histogram("exec.op_seconds", trace.LatencyBuckets)
		m.Gauge("exec.op_p50_seconds").Set(op.Quantile(0.5))
		m.Gauge("exec.op_p99_seconds").Set(op.Quantile(0.99))
	}))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			Status string `json:"status"`
			buildinfo.Info
			UptimeSeconds float64 `json:"uptime_seconds"`
		}{"training", buildinfo.Get(), time.Since(d.started).Seconds()})
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Write([]byte(dashboardHTML))
	})
	// The trainer gets the same per-op continuous profiler as the
	// serving surfaces: windowed CPU+heap capture joined against op
	// spans, at /profilez.
	d.prof = memobs.StartProfiler(memobs.ProfilerOptions{Metrics: met})
	mux.HandleFunc("/profilez", memobs.Handler(d.prof, nil))
	if enablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	d.srv = &http.Server{Handler: mux}
	go d.srv.Serve(ln)
	return d, nil
}

// Addr returns the bound listen address.
func (d *Dashboard) Addr() net.Addr { return d.ln.Addr() }

// Close stops the dashboard, waiting up to a second for in-flight
// scrapes.
func (d *Dashboard) Close() error {
	d.prof.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	return d.srv.Shutdown(ctx)
}

// dashboardHTML is the live trainer page: stat tiles fed by a 1 Hz
// /metricsz poll. It reuses the report renderer's visual tokens
// (surfaces, text hierarchy, tabular numerals) so the live view and the
// post-hoc report page read as one system.
const dashboardHTML = `<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8"><title>splitcnn trainer</title>
<style>
:root{--bg:#fcfcfb;--text-1:#0b0b0b;--text-2:#52514e;--grid:#e7e6e2}
@media (prefers-color-scheme: dark){:root{--bg:#1a1a19;--text-1:#ffffff;--text-2:#c3c2b7;--grid:#33322f}}
body{background:var(--bg);color:var(--text-1);font:14px/1.45 system-ui,-apple-system,sans-serif;
  max-width:960px;margin:2rem auto;padding:0 1rem}
h1{font-size:1.3rem;margin-bottom:.2rem}
.sub{color:var(--text-2);margin-top:0}
.tiles{display:grid;grid-template-columns:repeat(auto-fill,minmax(160px,1fr));gap:.8rem;margin:1.2rem 0}
.tile{border:1px solid var(--grid);border-radius:6px;padding:.6rem .8rem}
.tile b{display:block;color:var(--text-2);font-size:.75rem;font-weight:500;
  text-transform:uppercase;letter-spacing:.04em;margin-bottom:.25rem}
.tile span{font-size:1.25rem;font-variant-numeric:tabular-nums}
#err{color:var(--text-2)}
</style></head><body>
<h1>splitcnn trainer</h1>
<p class="sub">live training telemetry · refreshes every second · <a href="/metricsz">/metricsz</a> · <a href="/healthz">/healthz</a></p>
<div class="tiles" id="tiles"></div>
<p id="err"></p>
<script>
const TILES = [
  ["train.loss","loss",v=>v.toFixed(4)],
  ["train.test_error","test error",v=>v.toFixed(4)],
  ["train.grad_norm","grad norm",v=>v.toExponential(2)],
  ["train.param_norm","param norm",v=>v.toFixed(2)],
  ["train.lr","learning rate",v=>v.toPrecision(3)],
  ["train.images_per_sec","images/s",v=>v.toFixed(1)],
  ["train.step_p50_seconds","step p50",v=>(v*1e3).toFixed(1)+" ms"],
  ["train.step_p99_seconds","step p99",v=>(v*1e3).toFixed(1)+" ms"],
  ["arena.in_use_bytes","arena in use",v=>(v/1048576).toFixed(1)+" MiB"],
];
const COUNTERS = [["train.steps","steps"],["train.epochs","epochs"],["train.guard_trips","guard trips"]];
async function tick(){
  try{
    const m = await (await fetch("/metricsz")).json();
    const g = m.gauges||{}, c = m.counters||{};
    let h = "";
    for(const [name,label] of COUNTERS)
      h += '<div class="tile"><b>'+label+'</b><span>'+(c[name]??0)+"</span></div>";
    for(const [name,label,fmt] of TILES)
      h += '<div class="tile"><b>'+label+'</b><span>'+(name in g?fmt(g[name]):"–")+"</span></div>";
    document.getElementById("tiles").innerHTML = h;
    document.getElementById("err").textContent = "";
  }catch(e){document.getElementById("err").textContent = "scrape failed: "+e;}
}
tick(); setInterval(tick, 1000);
</script></body></html>
`
