package train_test

import (
	"math"
	"math/rand"
	"testing"

	"splitcnn/internal/graph"
	"splitcnn/internal/models"
	"splitcnn/internal/nn"
	"splitcnn/internal/train"
)

func buildMini(t *testing.T, batch int) (*models.Model, *graph.ParamStore) {
	t.Helper()
	m := models.VGG19CIFAR(batch, models.Config{WidthDiv: 32})
	store := graph.NewParamStore()
	store.InitFromGraph(m.Graph, rand.New(rand.NewSource(3)), nn.KaimingInit)
	return m, store
}

// TestDataParallelMatchesSequential: with the same global batch, the
// all-reduced data-parallel gradient must equal the average of the
// workers' shard gradients computed sequentially.
func TestDataParallelMatchesSequential(t *testing.T) {
	ds := tinyDataset(t)
	const local, workers = 8, 4
	m, store := buildMini(t, local)
	dp, err := train.NewDataParallel(m.Graph, store, workers)
	if err != nil {
		t.Fatal(err)
	}
	if dp.GlobalBatch() != local*workers {
		t.Fatalf("global batch %d", dp.GlobalBatch())
	}
	indices := make([]int, local*workers)
	for i := range indices {
		indices[i] = i
	}
	loss, err := dp.Step(ds, indices)
	if err != nil {
		t.Fatal(err)
	}
	if loss <= 0 {
		t.Fatalf("loss %v", loss)
	}
	parGrad := map[string][]float32{}
	for _, p := range store.All() {
		parGrad[p.Name] = append([]float32(nil), p.Grad.Data()...)
	}

	// Sequential reference: same shards through one executor. Use a
	// fresh model so BN running stats start identically (values shared
	// via a fresh init with the same seed).
	m2, store2 := buildMini(t, local)
	ex, err := graph.NewExecutor(m2.Graph, store2)
	if err != nil {
		t.Fatal(err)
	}
	store2.ZeroGrads()
	for w := 0; w < workers; w++ {
		x, labels := ds.Batch(true, indices[w*local:(w+1)*local])
		if _, err := ex.Forward(graph.Feeds{"image": x, "labels": labels}); err != nil {
			t.Fatal(err)
		}
		if err := ex.Backward(); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range store2.All() {
		got := parGrad[p.Name]
		for i, v := range p.Grad.Data() {
			want := v / workers
			if d := math.Abs(float64(got[i] - want)); d > 2e-3 {
				t.Fatalf("param %s grad[%d]: parallel %v vs sequential/W %v", p.Name, i, got[i], want)
			}
		}
	}
}

// TestDataParallelTrainingConverges: a few all-reduced SGD steps reduce
// the loss.
func TestDataParallelTrainingConverges(t *testing.T) {
	ds := tinyDataset(t)
	const local, workers = 8, 2
	m, store := buildMini(t, local)
	dp, err := train.NewDataParallel(m.Graph, store, workers)
	if err != nil {
		t.Fatal(err)
	}
	opt := &train.SGD{LR: 0.05, Momentum: 0.9}
	rng := rand.New(rand.NewSource(4))
	var first, last float64
	for step := 0; step < 10; step++ {
		perm := ds.Shuffled(rng)[:local*workers]
		loss, err := dp.Step(ds, perm)
		if err != nil {
			t.Fatal(err)
		}
		if step == 0 {
			first = loss
		}
		last = loss
		opt.Step(store)
	}
	if last >= first {
		t.Fatalf("data-parallel loss did not drop: %v -> %v", first, last)
	}
}

func TestDataParallelValidation(t *testing.T) {
	ds := tinyDataset(t)
	m, store := buildMini(t, 4)
	if _, err := train.NewDataParallel(m.Graph, store, 0); err == nil {
		t.Fatal("zero workers accepted")
	}
	dp, err := train.NewDataParallel(m.Graph, store, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dp.Step(ds, []int{0, 1, 2}); err == nil {
		t.Fatal("wrong global batch accepted")
	}
}
