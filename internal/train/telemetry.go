package train

import (
	"math"

	"splitcnn/internal/graph"
)

// Norms returns the global L2 norms of every trainable parameter's
// gradient and value in one pass over the store — the grad_norm /
// param_norm columns of the step telemetry stream and the quantity the
// gradient-explosion guard thresholds. Frozen parameters are skipped
// (their gradients are never applied).
func Norms(store *graph.ParamStore) (gradNorm, paramNorm float64) {
	var g2, p2 float64
	for _, p := range store.All() {
		if p.Frozen {
			continue
		}
		g2 += p.Grad.SumSquares()
		p2 += p.Value.SumSquares()
	}
	return math.Sqrt(g2), math.Sqrt(p2)
}

// safeMean is sum/n with the n == 0 case pinned to 0 instead of NaN —
// the rollup guard that keeps an empty epoch from poisoning the
// train.loss gauge.
func safeMean(sum float64, n int) float64 {
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// rate is samples/seconds with a degenerate clock pinned to 0 —
// encoding/json rejects ±Inf, so a throughput figure must never be one.
func rate(samples int, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(samples) / seconds
}
