//go:build !race

package train_test

// raceEnabled mirrors the stdlib's internal/race.Enabled: heavy
// training tests shrink their workloads under the race detector, whose
// ~20x slowdown would otherwise push the package past the test binary
// timeout. The full-size assertions run in every normal `go test`.
const raceEnabled = false
