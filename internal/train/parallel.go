package train

import (
	"fmt"
	"sync"

	"splitcnn/internal/data"
	"splitcnn/internal/graph"
	"splitcnn/internal/tensor"
)

// DataParallel trains one model graph across W concurrent worker
// replicas, mirroring the paper's experimental platform ("global batch
// sizes ... sum of local batch sizes across 4 GPUs within one machine"):
// each worker runs forward/backward on its shard of the global minibatch
// against shared parameter values, the per-worker gradients are
// all-reduced (summed), and a single optimizer step is applied. Workers
// here are goroutines standing in for the four P100s.
type DataParallel struct {
	// Workers is the replica count (the paper uses 4).
	Workers int
	// Graph is the per-worker computation graph; its input batch
	// dimension is the LOCAL batch size.
	Graph *graph.Graph
	// Store owns the master parameters.
	Store *graph.ParamStore

	replicas []*graph.ParamStore
	execs    []*graph.Executor
	// Per-worker arenas and batch buffers: executors on different
	// goroutines must never share an arena's tensors, so each replica
	// recycles through its own.
	batchX, batchY []*tensor.Tensor
	feeds          []graph.Feeds
}

// NewDataParallel validates and prepares the worker pool.
func NewDataParallel(g *graph.Graph, store *graph.ParamStore, workers int) (*DataParallel, error) {
	if workers < 1 {
		return nil, fmt.Errorf("train: want >= 1 workers, got %d", workers)
	}
	img := g.FindNode("image")
	if img == nil {
		return nil, fmt.Errorf("train: graph has no %q input", "image")
	}
	dp := &DataParallel{Workers: workers, Graph: g, Store: store}
	for w := 0; w < workers; w++ {
		rep := store.Replica()
		ex, err := graph.NewExecutor(g, rep)
		if err != nil {
			return nil, err
		}
		ex.UseArena(tensor.NewArena())
		x := tensor.New(img.Shape...)
		labels := tensor.New(img.Shape.N())
		dp.replicas = append(dp.replicas, rep)
		dp.execs = append(dp.execs, ex)
		dp.batchX = append(dp.batchX, x)
		dp.batchY = append(dp.batchY, labels)
		dp.feeds = append(dp.feeds, graph.Feeds{"image": x, "labels": labels})
	}
	return dp, nil
}

// GlobalBatch returns the global batch size (local batch × workers).
func (dp *DataParallel) GlobalBatch() int {
	return dp.Graph.FindNode("image").Shape.N() * dp.Workers
}

// Step runs one synchronous data-parallel step on a global minibatch:
// shard, forward/backward in parallel, all-reduce gradients into the
// master store, and return the mean loss. The caller applies the
// optimizer afterwards.
func (dp *DataParallel) Step(ds *data.Dataset, indices []int) (float64, error) {
	local := dp.Graph.FindNode("image").Shape.N()
	if len(indices) != local*dp.Workers {
		return 0, fmt.Errorf("train: global batch %d != %d workers x %d local", len(indices), dp.Workers, local)
	}
	losses := make([]float64, dp.Workers)
	errs := make([]error, dp.Workers)
	var wg sync.WaitGroup
	for w := 0; w < dp.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			shard := indices[w*local : (w+1)*local]
			ds.BatchInto(dp.batchX[w], dp.batchY[w], true, shard)
			dp.replicas[w].ZeroGrads()
			outs, err := dp.execs[w].Forward(dp.feeds[w])
			if err != nil {
				errs[w] = err
				return
			}
			losses[w] = float64(outs[0].Data()[0])
			errs[w] = dp.execs[w].Backward()
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	// All-reduce: sum worker gradients into the master store, scaled so
	// the update matches a single pass over the global batch (each
	// worker's mean-loss gradient covers 1/W of the samples).
	dp.Store.ZeroGrads()
	scale := float32(1) / float32(dp.Workers)
	for _, p := range dp.Store.All() {
		dst := p.Grad
		for _, rep := range dp.replicas {
			tensor.AXPY(dst, scale, rep.Lookup(p.Name).Grad)
		}
	}
	var mean float64
	for _, l := range losses {
		mean += l
	}
	return mean / float64(dp.Workers), nil
}
