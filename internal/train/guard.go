package train

import (
	"fmt"
	"math"

	"splitcnn/internal/graph"
	"splitcnn/internal/trace"
)

// GuardConfig arms the trainer's anomaly guards: NaN/Inf detection on
// loss, gradients and (sampled) op outputs, plus a gradient-explosion
// threshold. When a guard fires, the run halts with a *GuardError and —
// if FlightPath is set — dumps the flight recorder's ring of recent
// step records and op spans, so a diverged run leaves a post-mortem
// artifact instead of a flat "loss=NaN" line.
type GuardConfig struct {
	// Enabled arms the guards; the zero value trains unguarded.
	Enabled bool
	// MaxGradNorm trips the explosion guard when the global gradient L2
	// norm exceeds it (0 selects 1e6 — far above any healthy run, so it
	// only fires on genuine divergence).
	MaxGradNorm float64
	// SampleStride is the element stride of the per-op output scan run
	// inside the executor hook (0 selects 64; 1 scans every element).
	// NaNs saturate whole tensors within an op or two, so a sparse scan
	// catches them at a small fraction of a full pass; the full scan
	// happens once, on the trip.
	SampleStride int
	// FlightPath, when set, receives the flight-recorder dump (JSON) the
	// moment a guard fires.
	FlightPath string
	// FlightSteps / FlightSpans size the recorder rings (0 selects the
	// trace package defaults: 64 steps, 1024 spans).
	FlightSteps, FlightSpans int
}

// GuardError reports a tripped training guard. The Guard field names
// which one fired; Op attributes the first non-finite op output when
// the trip came from the executor-hook scan.
type GuardError struct {
	// Guard is one of "activation_nonfinite", "loss_nonfinite",
	// "grad_nonfinite", "grad_explosion".
	Guard string
	// Op is the serialized op name whose output first scanned
	// non-finite ("conv1", "conv1.bwd"); empty for unattributed trips.
	Op string
	// Step is the global step the guard fired on; Value the offending
	// quantity (the loss or gradient norm).
	Step  int
	Value float64
	// DumpPath is where the flight recorder dump landed ("" if none was
	// configured).
	DumpPath string
}

func (e *GuardError) Error() string {
	msg := fmt.Sprintf("train: guard %s tripped at step %d (value %g)", e.Guard, e.Step, e.Value)
	if e.Op != "" {
		msg += fmt.Sprintf(", first non-finite output at op %q", e.Op)
	}
	if e.DumpPath != "" {
		msg += ", flight dump: " + e.DumpPath
	}
	return msg
}

// guardState is the per-run guard machinery. The trainer is
// single-goroutine (hook and step loop run on the same goroutine), so
// plain fields suffice.
type guardState struct {
	cfg    GuardConfig
	flight *trace.FlightRecorder
	stride int
	maxG   float64
	met    *trace.Metrics
	// tripOp records the first op whose sampled output scan found a
	// non-finite value during the current step.
	tripOp string
}

func newGuardState(cfg GuardConfig, met *trace.Metrics) *guardState {
	g := &guardState{
		cfg:    cfg,
		flight: trace.NewFlightRecorder(cfg.FlightSteps, cfg.FlightSpans),
		stride: cfg.SampleStride,
		maxG:   cfg.MaxGradNorm,
		met:    met,
	}
	if g.stride <= 0 {
		g.stride = 64
	}
	if g.maxG <= 0 {
		g.maxG = 1e6
	}
	return g
}

// scan is the cheap per-op probe the executor hook runs.
func (g *guardState) scan(name string, ev graph.OpEvent) {
	if g.tripOp == "" && ev.Output != nil && ev.Output.HasNonFinite(g.stride) {
		g.tripOp = name
	}
}

// check runs the post-step guards and returns a *GuardError when one
// fires. The op-attributed activation guard wins over the aggregate
// ones — it points closest to the root cause.
func (g *guardState) check(step int, loss, gradNorm float64, store *graph.ParamStore) error {
	switch {
	case g.tripOp != "":
		return g.trip("activation_nonfinite", g.tripOp, step, loss, store)
	case math.IsNaN(loss) || math.IsInf(loss, 0):
		return g.trip("loss_nonfinite", "", step, loss, store)
	case math.IsNaN(gradNorm) || math.IsInf(gradNorm, 0):
		return g.trip("grad_nonfinite", "", step, gradNorm, store)
	case gradNorm > g.maxG:
		return g.trip("grad_explosion", "", step, gradNorm, store)
	}
	return nil
}

// trip assembles the post-mortem: the ring dump, a full-scan census of
// every parameter's value and gradient (the cheap sampled scans are
// upgraded to exact counts exactly once, here), the dump file, and the
// GuardError the run exits with.
func (g *guardState) trip(guard, op string, step int, value float64, store *graph.ParamStore) error {
	if g.met != nil {
		g.met.Counter("train.guard_trips").Add(1)
	}
	ge := &GuardError{Guard: guard, Op: op, Step: step, Value: value}
	d := g.flight.Dump()
	d.Guard, d.TripOp, d.TripStep = guard, op, step
	if !math.IsNaN(value) && !math.IsInf(value, 0) {
		d.Value = value
	}
	for _, p := range store.All() {
		nv, ng := p.Value.CountNonFinite(), p.Grad.CountNonFinite()
		if nv > 0 || ng > 0 {
			d.Tensors = append(d.Tensors, trace.TensorHealth{
				Name: p.Name, NonFiniteValues: nv, NonFiniteGrads: ng, Elems: p.Value.Elems(),
			})
		}
	}
	if g.cfg.FlightPath != "" {
		if err := d.WriteFile(g.cfg.FlightPath); err != nil {
			// The guard verdict matters more than the dump; report the
			// trip and fold the write failure into the message.
			ge.DumpPath = ""
			return fmt.Errorf("%w (flight dump failed: %v)", ge, err)
		}
		ge.DumpPath = g.cfg.FlightPath
	}
	return ge
}
