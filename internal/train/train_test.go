package train_test

import (
	"testing"

	"splitcnn/internal/core"
	"splitcnn/internal/data"
	"splitcnn/internal/graph"
	"splitcnn/internal/models"
	"splitcnn/internal/tensor"
	"splitcnn/internal/train"
)

func tinyDataset(t *testing.T) *data.Dataset {
	t.Helper()
	cfg := data.CIFARLike(512, 128)
	if raceEnabled {
		cfg = data.CIFARLike(128, 64)
	}
	cfg.Noise = 0.3
	cfg.MaxShift = 2
	ds, err := data.Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func baseCfg() train.Config {
	return train.Config{
		Arch:          "vgg19",
		Model:         models.Config{WidthDiv: 16, BatchNorm: true},
		BatchSize:     32,
		Epochs:        3,
		LR:            0.05,
		Momentum:      0.9,
		WeightDecay:   1e-4,
		LRDecayEpochs: []int{2},
		Seed:          5,
	}
}

func TestSGDStep(t *testing.T) {
	store := graph.NewParamStore()
	p := store.Get("w", tensor.Shape{2})
	p.Value.Fill(1)
	p.Grad.Fill(0.5)
	q := store.Get("b", tensor.Shape{1})
	q.NoDecay = true
	q.Value.Fill(1)
	q.Grad.Fill(0.5)
	f := store.Get("frozen", tensor.Shape{1})
	f.Frozen = true
	f.Value.Fill(1)
	f.Grad.Fill(9)

	opt := &train.SGD{LR: 0.1, Momentum: 0, WeightDecay: 0.2}
	opt.Step(store)
	// w: g = 0.5 + 0.2*1 = 0.7; w = 1 - 0.07 = 0.93
	if got := p.Value.At(0); got < 0.9299 || got > 0.9301 {
		t.Fatalf("decayed param %v, want 0.93", got)
	}
	// b: no decay: 1 - 0.05 = 0.95
	if got := q.Value.At(0); got < 0.9499 || got > 0.9501 {
		t.Fatalf("no-decay param %v, want 0.95", got)
	}
	if f.Value.At(0) != 1 {
		t.Fatal("frozen param updated")
	}
	// Momentum accumulates across steps.
	opt2 := &train.SGD{LR: 1, Momentum: 0.5}
	s2 := graph.NewParamStore()
	m := s2.Get("m", tensor.Shape{1})
	m.Grad.Fill(1)
	opt2.Step(s2) // v=1, w=-1
	opt2.Step(s2) // v=1.5, w=-2.5
	if got := m.Value.At(0); got != -2.5 {
		t.Fatalf("momentum update %v, want -2.5", got)
	}
}

func TestTrainBaselineLearns(t *testing.T) {
	ds := tinyDataset(t)
	cfg := baseCfg()
	cfg.Epochs = 6
	cfg.LRDecayEpochs = []int{4}
	if raceEnabled {
		cfg.Epochs, cfg.LRDecayEpochs = 2, nil
	}
	res, err := train.Run(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TestErr) != cfg.Epochs || len(res.TrainLoss) != cfg.Epochs {
		t.Fatalf("curves %d/%d epochs", len(res.TestErr), len(res.TrainLoss))
	}
	if res.TrainLoss[cfg.Epochs-1] >= res.TrainLoss[0] {
		t.Fatalf("training loss did not drop: %v", res.TrainLoss)
	}
	// The accuracy bar needs the full six epochs; the shrunken race run
	// only checks that training makes progress without data races.
	if !raceEnabled && res.FinalTestErr > 0.6 {
		t.Fatalf("final test error %.2f: no better than chance", res.FinalTestErr)
	}
}

func TestTrainSplitModel(t *testing.T) {
	ds := tinyDataset(t)
	cfg := baseCfg()
	cfg.Split = core.Config{Depth: 0.5, NH: 2, NW: 2}
	if raceEnabled {
		cfg.Epochs, cfg.LRDecayEpochs = 2, nil
	}
	res, err := train.Run(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.SplitConvs != 8 || res.TotalConvs != 16 {
		t.Fatalf("split %d/%d convs, want 8/16", res.SplitConvs, res.TotalConvs)
	}
	if res.TrainLoss[cfg.Epochs-1] >= res.TrainLoss[0] {
		t.Fatalf("split model did not learn: %v", res.TrainLoss)
	}
}

func TestTrainStochasticEvalsUnsplit(t *testing.T) {
	ds := tinyDataset(t)
	cfg := baseCfg()
	cfg.Epochs = 2
	cfg.Split = core.Config{Depth: 0.5, NH: 2, NW: 2, Stochastic: true, Omega: 0.2}
	cfg.EvalUnsplit = true
	res, err := train.Run(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.TrainLoss[1] >= res.TrainLoss[0]*1.5 {
		t.Fatalf("stochastic training diverged: %v", res.TrainLoss)
	}
	if res.FinalTestErr < 0 || res.FinalTestErr > 1 {
		t.Fatalf("test error %v out of range", res.FinalTestErr)
	}
}

func TestTrainValidation(t *testing.T) {
	ds := tinyDataset(t)
	cfg := baseCfg()
	cfg.BatchSize = 0
	if _, err := train.Run(cfg, ds); err == nil {
		t.Fatal("zero batch accepted")
	}
	cfg = baseCfg()
	cfg.Arch = "nonsense"
	if _, err := train.Run(cfg, ds); err == nil {
		t.Fatal("unknown architecture accepted")
	}
	cfg = baseCfg()
	cfg.BatchSize = 4096 // bigger than the dataset
	if _, err := train.Run(cfg, ds); err == nil {
		t.Fatal("oversized batch accepted")
	}
}

// TestTrainDeterminism: identical configs must produce identical curves.
func TestTrainDeterminism(t *testing.T) {
	ds := tinyDataset(t)
	cfg := baseCfg()
	cfg.Epochs = 1
	r1, err := train.Run(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := train.Run(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	if r1.TrainLoss[0] != r2.TrainLoss[0] || r1.TestErr[0] != r2.TestErr[0] {
		t.Fatalf("non-deterministic training: %v/%v vs %v/%v",
			r1.TrainLoss[0], r1.TestErr[0], r2.TrainLoss[0], r2.TestErr[0])
	}
}

// TestTrainCompiledEvalMatches: since training is deterministic and the
// compiled program is bit-identical to the interpreted executor, a run
// whose per-epoch validation goes through Config.CompiledEval must
// report exactly the same curves — on the plain baseline and through a
// split evaluation graph (whose patch-extract/concat ops take the
// compiler's fallback path).
func TestTrainCompiledEvalMatches(t *testing.T) {
	ds := tinyDataset(t)
	for _, split := range []bool{false, true} {
		cfg := baseCfg()
		cfg.Epochs = 1
		if split {
			cfg.Split = core.Config{Depth: 0.5, NH: 2, NW: 2}
		}
		ref, err := train.Run(cfg, ds)
		if err != nil {
			t.Fatal(err)
		}
		cfg.CompiledEval = true
		got, err := train.Run(cfg, ds)
		if err != nil {
			t.Fatal(err)
		}
		if ref.TrainLoss[0] != got.TrainLoss[0] || ref.TestErr[0] != got.TestErr[0] {
			t.Fatalf("split=%v: compiled eval diverged: %v/%v vs %v/%v",
				split, got.TrainLoss[0], got.TestErr[0], ref.TrainLoss[0], ref.TestErr[0])
		}
	}
}
