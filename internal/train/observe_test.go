package train_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"splitcnn/internal/costmodel"
	"splitcnn/internal/graph"
	"splitcnn/internal/trace"
	"splitcnn/internal/train"
)

// TestGuardHaltsOnInjectedInf injects an Inf into a conv weight after
// step 2 and asserts the anomaly guards halt the run on step 3 — within
// one step — with an error naming the guard, an op-attributed trip, and
// a flight dump on disk that records both the offending op and the
// corrupted tensor.
func TestGuardHaltsOnInjectedInf(t *testing.T) {
	ds := tinyDataset(t)
	cfg := baseCfg()
	cfg.Epochs = 1
	dump := filepath.Join(t.TempDir(), "flight.json")
	cfg.Guard = train.GuardConfig{Enabled: true, FlightPath: dump, SampleStride: 1}
	var log bytes.Buffer
	cfg.StepLog = trace.NewStepLog(&log)
	const injectAt = 2
	var injected string
	cfg.AfterStep = func(step int, store *graph.ParamStore) {
		if step != injectAt {
			return
		}
		for _, p := range store.All() {
			if strings.Contains(p.Name, "conv") && strings.HasSuffix(p.Name, ".w") {
				p.Value.Data()[0] = float32(math.Inf(1))
				injected = p.Name
				return
			}
		}
		t.Fatal("no conv weight found to corrupt")
	}

	_, err := train.Run(cfg, ds)
	if err == nil {
		t.Fatal("run completed despite injected Inf")
	}
	var ge *train.GuardError
	if !errors.As(err, &ge) {
		t.Fatalf("error %T is not a GuardError: %v", err, err)
	}
	if ge.Step != injectAt+1 {
		t.Fatalf("guard fired at step %d, want %d (within one step of the injection)", ge.Step, injectAt+1)
	}
	if ge.Guard != "activation_nonfinite" {
		t.Fatalf("guard %q fired, want activation_nonfinite", ge.Guard)
	}
	if ge.Op == "" {
		t.Fatal("guard did not attribute a tripping op")
	}
	if !strings.Contains(err.Error(), ge.Guard) {
		t.Fatalf("error %q does not name the guard", err)
	}
	if ge.DumpPath != dump {
		t.Fatalf("dump path %q, want %q", ge.DumpPath, dump)
	}

	raw, rerr := os.ReadFile(dump)
	if rerr != nil {
		t.Fatalf("flight dump not written: %v", rerr)
	}
	var fd trace.FlightDump
	if err := json.Unmarshal(raw, &fd); err != nil {
		t.Fatalf("flight dump not valid JSON: %v", err)
	}
	if fd.Guard != ge.Guard || fd.TripOp != ge.Op || fd.TripStep != ge.Step {
		t.Fatalf("dump header %s/%s/%d disagrees with error %s/%s/%d",
			fd.Guard, fd.TripOp, fd.TripStep, ge.Guard, ge.Op, ge.Step)
	}
	foundSpan := false
	for _, sp := range fd.Spans {
		if sp.Name == ge.Op {
			foundSpan = true
		}
	}
	if !foundSpan {
		t.Fatalf("dump spans do not include tripping op %q", ge.Op)
	}
	foundTensor := false
	for _, th := range fd.Tensors {
		if th.Name == injected && th.NonFiniteValues > 0 {
			foundTensor = true
		}
	}
	if !foundTensor {
		t.Fatalf("dump tensor census misses corrupted param %q: %+v", injected, fd.Tensors)
	}
	if len(fd.Steps) == 0 {
		t.Fatal("dump carries no step records")
	}

	// The non-finite loss of the tripping step still reaches the steplog
	// (scrubbed to null) — the post-mortem keeps its last line.
	if err := cfg.StepLog.Flush(); err != nil {
		t.Fatal(err)
	}
	steps, _, err := trace.CheckStepLog(bytes.NewReader(log.Bytes()))
	if err != nil {
		t.Fatalf("steplog from guarded run invalid: %v", err)
	}
	if steps != injectAt+1 {
		t.Fatalf("steplog has %d steps, want %d", steps, injectAt+1)
	}
}

// TestTrainStepLogStream runs a short guarded-off training and checks
// the emitted JSONL stream: schema-valid per CheckStepLog, one record
// per optimizer step with monotonic step numbers, and per-epoch rollups
// that agree with the returned learning curves.
func TestTrainStepLogStream(t *testing.T) {
	ds := tinyDataset(t)
	cfg := baseCfg()
	cfg.Epochs = 2
	var buf bytes.Buffer
	cfg.StepLog = trace.NewStepLog(&buf)
	res, err := train.Run(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.StepLog.Close(); err != nil {
		t.Fatal(err)
	}

	perEpoch := ds.Cfg.TrainN / cfg.BatchSize
	wantSteps := cfg.Epochs * perEpoch
	steps, epochs, err := trace.CheckStepLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("steplog failed validation: %v", err)
	}
	if steps != wantSteps || epochs != cfg.Epochs {
		t.Fatalf("steplog counts %d steps / %d epochs, want %d / %d", steps, epochs, wantSteps, cfg.Epochs)
	}

	recs, eps, err := trace.ReadStepLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range recs {
		if r.Step != i+1 {
			t.Fatalf("record %d has step %d, want %d", i, r.Step, i+1)
		}
		if r.Epoch != i/perEpoch {
			t.Fatalf("step %d attributed to epoch %d, want %d", r.Step, r.Epoch, i/perEpoch)
		}
		if r.StepSeconds <= 0 || r.ImagesPerSec <= 0 {
			t.Fatalf("step %d has degenerate timing: %+v", r.Step, r)
		}
		if math.IsNaN(r.Loss) || math.IsNaN(r.GradNorm) || r.ParamNorm <= 0 {
			t.Fatalf("step %d has unhealthy stats: %+v", r.Step, r)
		}
		if r.ArenaInUseBytes < 0 {
			t.Fatalf("step %d arena bytes %d negative", r.Step, r.ArenaInUseBytes)
		}
	}
	for i, e := range eps {
		if e.Epoch != i || e.Steps != perEpoch {
			t.Fatalf("epoch record %d: %+v", i, e)
		}
		if math.Abs(e.MeanLoss-res.TrainLoss[i]) > 1e-9 {
			t.Fatalf("epoch %d rollup loss %v disagrees with result %v", i, e.MeanLoss, res.TrainLoss[i])
		}
		if math.Abs(e.TestError-res.TestErr[i]) > 1e-9 {
			t.Fatalf("epoch %d rollup test error %v disagrees with result %v", i, e.TestError, res.TestErr[i])
		}
	}
}

// TestTrainDriftCalibration trains one epoch with a Calibrate device and
// expects a populated plan-vs-actual report plus calib.* gauges.
func TestTrainDriftCalibration(t *testing.T) {
	ds := tinyDataset(t)
	cfg := baseCfg()
	cfg.Epochs = 1
	cfg.Metrics = trace.NewMetrics()
	dev := costmodel.P100()
	cfg.Calibrate = &dev
	res, err := train.Run(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Drift == nil {
		t.Fatal("calibrated run returned no drift report")
	}
	if len(res.Drift.Ops) == 0 || res.Drift.MaxOp == "" {
		t.Fatalf("drift report empty: %+v", res.Drift)
	}
	for _, d := range res.Drift.Ops {
		if d.Ratio <= 0 || math.IsNaN(d.Ratio) || math.IsInf(d.Ratio, 0) {
			t.Fatalf("op %s has degenerate drift ratio %v", d.Name, d.Ratio)
		}
	}
	if v := cfg.Metrics.Gauge("calib.ops_measured").Value(); v != float64(len(res.Drift.Ops)) {
		t.Fatalf("calib.ops_measured gauge %v, want %d", v, len(res.Drift.Ops))
	}
	if v := cfg.Metrics.Gauge("calib.op_drift_ratio_max").Value(); v <= 0 {
		t.Fatalf("calib.op_drift_ratio_max gauge %v, want > 0", v)
	}
}

// TestDashboard exercises the trainer's HTTP surface: the live page, the
// content-negotiated /metricsz (JSON default, Prometheus on request)
// with scrape-time quantile gauges, /healthz, and the pprof gate.
func TestDashboard(t *testing.T) {
	met := trace.NewMetrics()
	met.Gauge("train.loss").Set(1.5)
	met.Histogram("train.step_seconds", trace.LatencyBuckets).Observe(0.01)
	d, err := train.StartDashboard("127.0.0.1:0", met, false)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	base := "http://" + d.Addr().String()

	get := func(path string) (int, string, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
	}

	code, body, ctype := get("/metricsz")
	if code != http.StatusOK || !strings.Contains(ctype, "application/json") {
		t.Fatalf("/metricsz: code %d type %s", code, ctype)
	}
	var snap struct {
		Gauges map[string]float64 `json:"gauges"`
	}
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metricsz not JSON: %v", err)
	}
	if snap.Gauges["train.loss"] != 1.5 {
		t.Fatalf("train.loss gauge %v, want 1.5", snap.Gauges["train.loss"])
	}
	if snap.Gauges["train.step_p50_seconds"] <= 0 {
		t.Fatalf("scrape-time p50 gauge missing: %v", snap.Gauges)
	}

	code, body, ctype = get("/metricsz?format=prom")
	if code != http.StatusOK || !strings.Contains(ctype, "version=0.0.4") {
		t.Fatalf("/metricsz?format=prom: code %d type %s", code, ctype)
	}
	if !strings.Contains(body, "# TYPE") || !strings.Contains(body, "train_loss") {
		t.Fatalf("prom exposition missing families:\n%s", body)
	}

	code, body, _ = get("/healthz")
	if code != http.StatusOK || !strings.Contains(body, `"training"`) {
		t.Fatalf("/healthz: code %d body %s", code, body)
	}

	code, body, _ = get("/")
	if code != http.StatusOK || !strings.Contains(body, "splitcnn trainer") {
		t.Fatalf("dashboard page: code %d", code)
	}

	if code, _, _ = get("/debug/pprof/"); code != http.StatusNotFound {
		t.Fatalf("pprof served despite being disabled: code %d", code)
	}
}
