// Package benchlog holds the benchmark-log schema shared by the
// benchjson appender and the `splitcnn benchdiff` regression gate: a
// JSON log of `go test -bench` runs, one Run per suite invocation,
// each benchmark a name plus a unit→value metric map.
package benchlog

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one `BenchmarkName  N  metrics...` result line.
type Benchmark struct {
	Name string `json:"name"`
	N    int64  `json:"n"`
	// Metrics maps unit -> value, e.g. "ns/op": 4.7e6, "GFLOP/s": 57.3.
	Metrics map[string]float64 `json:"metrics"`
}

// Run is one invocation of the benchmark suite.
type Run struct {
	Label      string      `json:"label,omitempty"`
	Date       string      `json:"date,omitempty"`
	Go         string      `json:"go"`
	CPU        string      `json:"cpu,omitempty"`
	MaxProcs   int         `json:"gomaxprocs"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Log is the on-disk shape of BENCH_*.json.
type Log struct {
	Comment string `json:"comment,omitempty"`
	Runs    []Run  `json:"runs"`
}

// ParseLine parses one `go test -bench` output line into a Benchmark.
// The -GOMAXPROCS suffix is stripped from the name so runs compare
// across machines. Non-benchmark lines return ok=false.
func ParseLine(line string, maxProcs int) (Benchmark, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Benchmark{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	n, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{
		Name:    strings.TrimSuffix(fields[0], fmt.Sprintf("-%d", maxProcs)),
		N:       n,
		Metrics: map[string]float64{},
	}
	for i := 2; i+1 < len(fields); i += 2 {
		if v, err := strconv.ParseFloat(fields[i], 64); err == nil {
			b.Metrics[fields[i+1]] = v
		}
	}
	return b, true
}

// Read loads a benchmark log from disk.
func Read(path string) (*Log, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var log Log
	if err := json.Unmarshal(raw, &log); err != nil {
		return nil, fmt.Errorf("%s is not a benchjson log: %w", path, err)
	}
	return &log, nil
}

// Write stores the log, pretty-printed for diff-friendly history.
func Write(path string, log *Log) error {
	enc, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(enc, '\n'), 0o644)
}

// Direction classifies a metric unit for regression comparison.
type Direction int

const (
	// Neutral units (avg-batch, workers, gang-size) describe the run's
	// shape, not its performance; they are never gated.
	Neutral Direction = iota
	// LowerBetter units are times and footprints.
	LowerBetter
	// HigherBetter units are throughputs.
	HigherBetter
)

// UnitDirection returns how a metric unit should be compared. Unknown
// units are Neutral — the gate only judges units it understands.
func UnitDirection(unit string) Direction {
	switch unit {
	case "ns/op", "B/op", "allocs/op", "p99-ms", "peak-heap-MiB", "arena-hw-MiB":
		return LowerBetter
	case "GFLOP/s", "GB/s", "MB/s", "img/s":
		return HigherBetter
	}
	return Neutral
}

// Delta is one metric comparison between a baseline and a new run.
type Delta struct {
	Benchmark string  `json:"benchmark"`
	Unit      string  `json:"unit"`
	Base      float64 `json:"base"`
	New       float64 `json:"new"`
	// Change is the signed relative change in the unit's natural
	// direction: positive means worse (slower, bigger, less throughput).
	Change float64 `json:"change"`
	// Limit is the threshold Change was judged against.
	Limit     float64 `json:"limit"`
	Regressed bool    `json:"regressed"`
}

// DiffResult summarizes a baseline-vs-new comparison.
type DiffResult struct {
	// Deltas holds every gated metric comparison, regressions first,
	// then by descending Change.
	Deltas []Delta
	// Compared counts gated metric comparisons; zero means the two runs
	// share no benchmark with a gateable unit.
	Compared    int
	Regressions int
}

// Diff compares every benchmark present in both runs, metric by
// metric. thresholds maps a unit to its allowed relative regression
// (e.g. "ns/op": 0.25 tolerates 25% slower); units absent from the map
// use def. Neutral units and benchmarks missing from either run are
// skipped — the gate judges shared, understood metrics only.
func Diff(base, cur Run, def float64, thresholds map[string]float64) DiffResult {
	baseBy := make(map[string]Benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseBy[b.Name] = b
	}
	var res DiffResult
	for _, nb := range cur.Benchmarks {
		bb, ok := baseBy[nb.Name]
		if !ok {
			continue
		}
		for unit, nv := range nb.Metrics {
			dir := UnitDirection(unit)
			if dir == Neutral {
				continue
			}
			bv, ok := bb.Metrics[unit]
			if !ok {
				continue
			}
			limit := def
			if t, ok := thresholds[unit]; ok {
				limit = t
			}
			var change float64
			switch {
			case bv == 0 && nv == 0:
				change = 0
			case bv == 0:
				// A pinned-zero baseline (e.g. B/op 0 on an
				// allocation-free benchmark) regressing to nonzero is an
				// unbounded relative change — always a gate failure for
				// lower-better units.
				if dir == LowerBetter {
					change = 1e9
				} else {
					change = -1e9
				}
			case dir == LowerBetter:
				change = nv/bv - 1
			default: // HigherBetter: positive change means throughput lost
				change = bv/nv - 1
			}
			d := Delta{
				Benchmark: nb.Name, Unit: unit, Base: bv, New: nv,
				Change: change, Limit: limit, Regressed: change > limit,
			}
			res.Compared++
			if d.Regressed {
				res.Regressions++
			}
			res.Deltas = append(res.Deltas, d)
		}
	}
	sort.Slice(res.Deltas, func(i, j int) bool {
		a, b := res.Deltas[i], res.Deltas[j]
		if a.Regressed != b.Regressed {
			return a.Regressed
		}
		if a.Change != b.Change {
			return a.Change > b.Change
		}
		if a.Benchmark != b.Benchmark {
			return a.Benchmark < b.Benchmark
		}
		return a.Unit < b.Unit
	})
	return res
}
