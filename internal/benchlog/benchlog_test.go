package benchlog

import (
	"path/filepath"
	"testing"
)

func TestParseLine(t *testing.T) {
	b, ok := ParseLine("BenchmarkConv2DForward/direct-8      120      9876543 ns/op    57.30 GFLOP/s    1024 B/op    3 allocs/op", 8)
	if !ok {
		t.Fatal("benchmark line not recognized")
	}
	if b.Name != "BenchmarkConv2DForward/direct" {
		t.Fatalf("name = %q (GOMAXPROCS suffix not stripped)", b.Name)
	}
	if b.N != 120 {
		t.Fatalf("n = %d", b.N)
	}
	want := map[string]float64{"ns/op": 9876543, "GFLOP/s": 57.30, "B/op": 1024, "allocs/op": 3}
	for unit, v := range want {
		if b.Metrics[unit] != v {
			t.Fatalf("metrics[%s] = %g, want %g", unit, b.Metrics[unit], v)
		}
	}
	// Loadtest lines carry memory units too.
	b, ok = ParseLine("BenchmarkServeLoadtest       64      1200000 ns/op     812.1 img/s      3.400 p99-ms     2.00 avg-batch    12.29 peak-heap-MiB     4.06 arena-hw-MiB", 8)
	if !ok || b.Metrics["peak-heap-MiB"] != 12.29 || b.Metrics["arena-hw-MiB"] != 4.06 {
		t.Fatalf("loadtest memory metrics not parsed: %+v", b)
	}
	for _, bad := range []string{"ok  \tsplitcnn\t1.2s", "goos: linux", "Benchmark", "BenchmarkX notanumber 5 ns/op"} {
		if _, ok := ParseLine(bad, 8); ok {
			t.Fatalf("ParseLine accepted %q", bad)
		}
	}
}

func TestUnitDirection(t *testing.T) {
	for _, u := range []string{"ns/op", "B/op", "allocs/op", "p99-ms", "peak-heap-MiB", "arena-hw-MiB"} {
		if UnitDirection(u) != LowerBetter {
			t.Fatalf("%s should be lower-better", u)
		}
	}
	for _, u := range []string{"GFLOP/s", "GB/s", "MB/s", "img/s"} {
		if UnitDirection(u) != HigherBetter {
			t.Fatalf("%s should be higher-better", u)
		}
	}
	for _, u := range []string{"avg-batch", "workers", "frobs/fortnight"} {
		if UnitDirection(u) != Neutral {
			t.Fatalf("%s should be neutral (ungated)", u)
		}
	}
}

func run(benchmarks ...Benchmark) Run { return Run{Benchmarks: benchmarks} }

func bench(name string, metrics map[string]float64) Benchmark {
	return Benchmark{Name: name, N: 1, Metrics: metrics}
}

func TestDiffDirections(t *testing.T) {
	base := run(
		bench("BenchmarkA", map[string]float64{"ns/op": 100, "GFLOP/s": 50, "avg-batch": 4}),
		bench("BenchmarkGone", map[string]float64{"ns/op": 1}),
	)
	cur := run(
		bench("BenchmarkA", map[string]float64{"ns/op": 140, "GFLOP/s": 48, "avg-batch": 9}),
		bench("BenchmarkNew", map[string]float64{"ns/op": 1}),
	)
	res := Diff(base, cur, 0.25, nil)
	// avg-batch is neutral; Gone/New are unshared: only ns/op + GFLOP/s gate.
	if res.Compared != 2 {
		t.Fatalf("compared = %d, want 2", res.Compared)
	}
	if res.Regressions != 1 {
		t.Fatalf("regressions = %d, want 1 (ns/op +40%% past 25%%)", res.Regressions)
	}
	// Regressions sort first.
	d := res.Deltas[0]
	if d.Benchmark != "BenchmarkA" || d.Unit != "ns/op" || !d.Regressed {
		t.Fatalf("worst delta = %+v", d)
	}
	if d.Change < 0.399 || d.Change > 0.401 {
		t.Fatalf("ns/op change = %g, want 0.40", d.Change)
	}
	// Throughput loss is positive change in the natural direction.
	d = res.Deltas[1]
	if d.Unit != "GFLOP/s" || d.Change <= 0 || d.Regressed {
		t.Fatalf("GFLOP/s delta = %+v, want small non-regressed positive change", d)
	}
}

func TestDiffThresholdOverrides(t *testing.T) {
	base := run(bench("BenchmarkA", map[string]float64{"ns/op": 100, "img/s": 100}))
	cur := run(bench("BenchmarkA", map[string]float64{"ns/op": 112, "img/s": 90}))
	// Default would pass both; a tight ns/op override trips it.
	res := Diff(base, cur, 0.25, map[string]float64{"ns/op": 0.10})
	if res.Regressions != 1 || res.Deltas[0].Unit != "ns/op" {
		t.Fatalf("override not applied: %+v", res.Deltas)
	}
}

func TestDiffZeroBaseline(t *testing.T) {
	base := run(bench("BenchmarkA", map[string]float64{"allocs/op": 0, "B/op": 0}))
	cur := run(bench("BenchmarkA", map[string]float64{"allocs/op": 3, "B/op": 0}))
	res := Diff(base, cur, 0.25, nil)
	if res.Regressions != 1 {
		t.Fatalf("regressions = %d, want 1 (allocation-free benchmark started allocating)", res.Regressions)
	}
	d := res.Deltas[0]
	if d.Unit != "allocs/op" || !d.Regressed {
		t.Fatalf("delta = %+v", d)
	}
	// 0 -> 0 is not a regression.
	for _, d := range res.Deltas {
		if d.Unit == "B/op" && d.Regressed {
			t.Fatalf("0 -> 0 flagged as regression: %+v", d)
		}
	}
}

func TestReadWriteRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_x.json")
	in := &Log{
		Comment: "test log",
		Runs: []Run{{
			Label: "seed", Go: "go1.24", MaxProcs: 8,
			Benchmarks: []Benchmark{bench("BenchmarkA", map[string]float64{"ns/op": 5})},
		}},
	}
	if err := Write(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if out.Comment != in.Comment || len(out.Runs) != 1 ||
		out.Runs[0].Benchmarks[0].Metrics["ns/op"] != 5 {
		t.Fatalf("roundtrip mismatch: %+v", out)
	}
	if _, err := Read(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("Read of a missing file should error")
	}
}
