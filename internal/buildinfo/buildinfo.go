// Package buildinfo surfaces the binary's own provenance — Go toolchain
// version and VCS revision, read from the build-info block the linker
// embeds — so /healthz responses and `splitcnn version` can say exactly
// which build is answering. Everything degrades to empty strings under
// `go run` or test binaries, where no VCS stamp exists.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
)

// Info is the binary's build provenance.
type Info struct {
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// Revision is the VCS commit (short form), "" when unstamped.
	Revision string `json:"revision,omitempty"`
	// Time is the commit timestamp (RFC 3339), "" when unstamped.
	Time string `json:"build_time,omitempty"`
	// Dirty reports uncommitted changes at build time.
	Dirty bool `json:"dirty,omitempty"`
	// Module is the main module path.
	Module string `json:"module,omitempty"`
}

// Get reads the build-info block. It never fails: a binary without one
// (tests, some `go run` paths) yields just the runtime's Go version.
func Get() Info {
	info := Info{GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	if bi.GoVersion != "" {
		info.GoVersion = bi.GoVersion
	}
	info.Module = bi.Main.Path
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
			if len(info.Revision) > 12 {
				info.Revision = info.Revision[:12]
			}
		case "vcs.time":
			info.Time = s.Value
		case "vcs.modified":
			info.Dirty = s.Value == "true"
		}
	}
	return info
}

// String renders a one-line version banner.
func (i Info) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "splitcnn (%s", i.GoVersion)
	if i.Revision != "" {
		fmt.Fprintf(&b, ", rev %s", i.Revision)
		if i.Dirty {
			b.WriteString("+dirty")
		}
	}
	if i.Time != "" {
		fmt.Fprintf(&b, ", %s", i.Time)
	}
	b.WriteString(")")
	return b.String()
}
