// Package snapshot reads and writes weight snapshots: the self-contained
// binary artifact that carries a trained model from `splitcnn train
// -save` to the inference server. A snapshot extends the parameter-only
// checkpoint of internal/graph with the batch-normalization running
// statistics — without them an eval-mode forward pass would normalize
// with the initial (0, 1) estimates and serve garbage.
//
// Format (little-endian throughout):
//
//	magic "SCNNSNAP" | uint32 version
//	uint32 paramCount
//	per parameter (sorted by name):
//	  uint16 nameLen | name | uint8 flags (1 = NoDecay, 2 = Frozen)
//	  uint8 rank | int64 dims... | float32 values...
//	uint32 bnStateCount
//	per BN state (sorted by name):
//	  uint16 nameLen | name | uint32 channels
//	  float64 momentum | float64 runningMean... | float64 runningVar...
//
// Loading is shape-checked: a parameter whose stored shape conflicts
// with one the target store already holds, or a BN state whose channel
// count disagrees with the model's, is an error rather than silent
// corruption.
package snapshot

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"splitcnn/internal/graph"
	"splitcnn/internal/nn"
)

var magic = [8]byte{'S', 'C', 'N', 'N', 'S', 'N', 'A', 'P'}

const version = 1

// maxDim bounds any single tensor dimension read from a snapshot, so a
// corrupt file fails fast instead of attempting a huge allocation.
const maxDim = 1 << 31

func writeString(w *bufio.Writer, s string) error {
	if len(s) > math.MaxUint16 {
		return fmt.Errorf("snapshot: name %q too long", s)
	}
	if err := binary.Write(w, binary.LittleEndian, uint16(len(s))); err != nil {
		return err
	}
	_, err := w.WriteString(s)
	return err
}

func readString(r *bufio.Reader) (string, error) {
	var n uint16
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

// Save writes every parameter of store and every BN state of bn to w.
// bn may be nil or empty for models without batch normalization.
func Save(w io.Writer, store *graph.ParamStore, bn map[string]*nn.BNState) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(version)); err != nil {
		return err
	}
	params := store.All()
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(params))); err != nil {
		return err
	}
	for _, p := range params {
		if err := writeString(bw, p.Name); err != nil {
			return err
		}
		var flags uint8
		if p.NoDecay {
			flags |= 1
		}
		if p.Frozen {
			flags |= 2
		}
		if err := bw.WriteByte(flags); err != nil {
			return err
		}
		shape := p.Value.Shape()
		if err := bw.WriteByte(uint8(len(shape))); err != nil {
			return err
		}
		for _, d := range shape {
			if err := binary.Write(bw, binary.LittleEndian, int64(d)); err != nil {
				return err
			}
		}
		if err := binary.Write(bw, binary.LittleEndian, p.Value.Data()); err != nil {
			return err
		}
	}
	names := make([]string, 0, len(bn))
	for name := range bn {
		names = append(names, name)
	}
	sort.Strings(names)
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(names))); err != nil {
		return err
	}
	for _, name := range names {
		st := bn[name]
		if len(st.RunningMean) != len(st.RunningVar) {
			return fmt.Errorf("snapshot: BN state %q has %d means but %d variances",
				name, len(st.RunningMean), len(st.RunningVar))
		}
		if err := writeString(bw, name); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(st.RunningMean))); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, st.Momentum); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, st.RunningMean); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, st.RunningVar); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load restores a snapshot from r into store and bn. Parameters are
// created in the store when missing and shape-checked when present. BN
// states are matched by name against bn (built by the model
// constructor); a state present in the file but absent from bn is an
// error, as is a channel-count mismatch — both mean the snapshot belongs
// to a different architecture. States in bn that the file lacks are left
// at their initial (0, 1) estimates, so parameter-only snapshots of
// BN-free models load into any registry.
func Load(r io.Reader, store *graph.ParamStore, bn map[string]*nn.BNState) error {
	br := bufio.NewReader(r)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	if m != magic {
		return fmt.Errorf("snapshot: bad magic %q", m)
	}
	var ver, paramCount uint32
	if err := binary.Read(br, binary.LittleEndian, &ver); err != nil {
		return err
	}
	if ver != version {
		return fmt.Errorf("snapshot: unsupported version %d", ver)
	}
	if err := binary.Read(br, binary.LittleEndian, &paramCount); err != nil {
		return err
	}
	for i := uint32(0); i < paramCount; i++ {
		name, err := readString(br)
		if err != nil {
			return err
		}
		flags, err := br.ReadByte()
		if err != nil {
			return err
		}
		rank, err := br.ReadByte()
		if err != nil {
			return err
		}
		if rank == 0 || rank > 8 {
			return fmt.Errorf("snapshot: parameter %q has rank %d", name, rank)
		}
		dims := make([]int, rank)
		for d := range dims {
			var v int64
			if err := binary.Read(br, binary.LittleEndian, &v); err != nil {
				return err
			}
			if v <= 0 || v > maxDim {
				return fmt.Errorf("snapshot: parameter %q has dimension %d", name, v)
			}
			dims[d] = int(v)
		}
		p, err := store.GetChecked(name, dims)
		if err != nil {
			return fmt.Errorf("snapshot: %w", err)
		}
		if err := binary.Read(br, binary.LittleEndian, p.Value.Data()); err != nil {
			return err
		}
		p.NoDecay = flags&1 != 0
		p.Frozen = flags&2 != 0
	}
	var bnCount uint32
	if err := binary.Read(br, binary.LittleEndian, &bnCount); err != nil {
		return err
	}
	for i := uint32(0); i < bnCount; i++ {
		name, err := readString(br)
		if err != nil {
			return err
		}
		var channels uint32
		if err := binary.Read(br, binary.LittleEndian, &channels); err != nil {
			return err
		}
		if channels == 0 || channels > maxDim {
			return fmt.Errorf("snapshot: BN state %q has %d channels", name, channels)
		}
		st, ok := bn[name]
		if !ok {
			return fmt.Errorf("snapshot: BN state %q not in the target model", name)
		}
		if len(st.RunningMean) != int(channels) {
			return fmt.Errorf("snapshot: BN state %q has %d channels, model wants %d",
				name, channels, len(st.RunningMean))
		}
		if err := binary.Read(br, binary.LittleEndian, &st.Momentum); err != nil {
			return err
		}
		if err := binary.Read(br, binary.LittleEndian, st.RunningMean); err != nil {
			return err
		}
		if err := binary.Read(br, binary.LittleEndian, st.RunningVar); err != nil {
			return err
		}
		// The statistics were mutated in place: drop any cached derived
		// values (compiled programs precast the inference statistics).
		st.Invalidate()
	}
	return nil
}

// SaveFile writes the snapshot to path atomically (via a temp file).
func SaveFile(path string, store *graph.ParamStore, bn map[string]*nn.BNState) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := Save(f, store, bn); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile restores a snapshot from path.
func LoadFile(path string, store *graph.ParamStore, bn map[string]*nn.BNState) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return Load(f, store, bn)
}
