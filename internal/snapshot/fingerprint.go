package snapshot

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
)

// FingerprintFile returns a short hex digest (first 8 bytes of SHA-256)
// of a snapshot file's raw bytes. The distributed serving layer folds it
// into the model signature so a router and its shard workers prove they
// restored identical weights before exchanging halo rows — a worker on
// stale weights would otherwise silently corrupt every gang it joins.
// An empty path fingerprints "the absence of a snapshot" as "".
func FingerprintFile(path string) (string, error) {
	if path == "" {
		return "", nil
	}
	f, err := os.Open(path)
	if err != nil {
		return "", fmt.Errorf("snapshot: fingerprint: %w", err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", fmt.Errorf("snapshot: fingerprint %s: %w", path, err)
	}
	return hex.EncodeToString(h.Sum(nil)[:8]), nil
}
