package snapshot

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"

	"splitcnn/internal/graph"
	"splitcnn/internal/nn"
	"splitcnn/internal/tensor"
)

func fillRandom(rng *rand.Rand, store *graph.ParamStore) {
	for _, p := range store.All() {
		for i := range p.Value.Data() {
			p.Value.Data()[i] = rng.Float32()*2 - 1
		}
	}
}

func makeFixture(rng *rand.Rand) (*graph.ParamStore, map[string]*nn.BNState) {
	store := graph.NewParamStore()
	store.Get("conv1.w", tensor.Shape{8, 3, 3, 3})
	store.Get("fc.w", tensor.Shape{10, 32})
	b := store.Get("fc.b", tensor.Shape{10})
	b.NoDecay = true
	fillRandom(rng, store)
	st := nn.NewBNState("bn1", 8)
	for i := range st.RunningMean {
		st.RunningMean[i] = rng.NormFloat64()
		st.RunningVar[i] = rng.Float64() + 0.5
	}
	st.Momentum = 0.05
	return store, map[string]*nn.BNState{"bn1": st}
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	store, bn := makeFixture(rng)

	path := filepath.Join(t.TempDir(), "w.snap")
	if err := SaveFile(path, store, bn); err != nil {
		t.Fatal(err)
	}

	// Load into a fresh, empty store plus a model-constructed BN registry.
	store2 := graph.NewParamStore()
	bn2 := map[string]*nn.BNState{"bn1": nn.NewBNState("bn1", 8)}
	if err := LoadFile(path, store2, bn2); err != nil {
		t.Fatal(err)
	}
	for _, p := range store.All() {
		q := store2.Lookup(p.Name)
		if q == nil {
			t.Fatalf("parameter %q missing after round trip", p.Name)
		}
		if !q.Value.Shape().Equal(p.Value.Shape()) {
			t.Fatalf("parameter %q shape %v, want %v", p.Name, q.Value.Shape(), p.Value.Shape())
		}
		if q.NoDecay != p.NoDecay || q.Frozen != p.Frozen {
			t.Fatalf("parameter %q flags changed", p.Name)
		}
		for i, v := range p.Value.Data() {
			if q.Value.Data()[i] != v {
				t.Fatalf("parameter %q element %d: %g != %g", p.Name, i, q.Value.Data()[i], v)
			}
		}
	}
	st, st2 := bn["bn1"], bn2["bn1"]
	if st2.Momentum != st.Momentum {
		t.Fatalf("momentum %g, want %g", st2.Momentum, st.Momentum)
	}
	for i := range st.RunningMean {
		if st2.RunningMean[i] != st.RunningMean[i] || st2.RunningVar[i] != st.RunningVar[i] {
			t.Fatalf("BN stats channel %d changed in round trip", i)
		}
	}
}

func TestLoadShapeMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	store, bn := makeFixture(rng)
	var buf bytes.Buffer
	if err := Save(&buf, store, bn); err != nil {
		t.Fatal(err)
	}

	conflicting := graph.NewParamStore()
	conflicting.Get("conv1.w", tensor.Shape{4, 3, 3, 3}) // wrong shape
	if err := Load(bytes.NewReader(buf.Bytes()), conflicting, map[string]*nn.BNState{"bn1": nn.NewBNState("bn1", 8)}); err == nil {
		t.Fatal("loading a conflicting parameter shape did not fail")
	}

	wrongBN := map[string]*nn.BNState{"bn1": nn.NewBNState("bn1", 4)} // wrong channels
	if err := Load(bytes.NewReader(buf.Bytes()), graph.NewParamStore(), wrongBN); err == nil {
		t.Fatal("loading a conflicting BN channel count did not fail")
	}

	if err := Load(bytes.NewReader(buf.Bytes()), graph.NewParamStore(), nil); err == nil {
		t.Fatal("loading BN stats into a model without that state did not fail")
	}
}

func TestLoadRejectsCorrupt(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	store, bn := makeFixture(rng)
	var buf bytes.Buffer
	if err := Save(&buf, store, bn); err != nil {
		t.Fatal(err)
	}

	bad := append([]byte(nil), buf.Bytes()...)
	bad[0] ^= 0xff // break the magic
	if err := Load(bytes.NewReader(bad), graph.NewParamStore(), nil); err == nil {
		t.Fatal("corrupt magic accepted")
	}

	truncated := buf.Bytes()[:buf.Len()/2]
	bn2 := map[string]*nn.BNState{"bn1": nn.NewBNState("bn1", 8)}
	if err := Load(bytes.NewReader(truncated), graph.NewParamStore(), bn2); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
}
