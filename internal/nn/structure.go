package nn

import (
	"fmt"

	"splitcnn/internal/tensor"
)

// Add sums any number of equally-shaped tensors — the residual summation
// of the ResNet family. Because ∂(Σxᵢ)/∂xᵢ = 1, every back-propagated
// error term is identical, which is what legalizes the Summation Error
// Storage Object Sharing optimization of §4.2 (HMMS detects ops of this
// kind and maps all input error tensors onto one TSO).
type Add struct{ N int }

// Kind implements graph.Op.
func (a *Add) Kind() string { return "add" }

// PatchwiseSafe reports that summation commutes with spatial splitting.
func (a *Add) PatchwiseSafe() bool { return true }

// SharedErrorStorage marks the op for summation-error TSO sharing.
func (a *Add) SharedErrorStorage() bool { return true }

// OutShape implements graph.Op.
func (a *Add) OutShape(in []tensor.Shape) (tensor.Shape, error) {
	if len(in) != a.N || a.N < 2 {
		return nil, fmt.Errorf("add: want %d inputs, got %d", a.N, len(in))
	}
	for _, s := range in[1:] {
		if !s.Equal(in[0]) {
			return nil, fmt.Errorf("add: shape mismatch %v vs %v", s, in[0])
		}
	}
	return in[0].Clone(), nil
}

// Forward implements graph.Op.
func (a *Add) Forward(in []*tensor.Tensor) (*tensor.Tensor, any) {
	out := in[0].Clone()
	for _, x := range in[1:] {
		tensor.AXPY(out, 1, x)
	}
	return out, nil
}

// Backward implements graph.Op: the same error flows to every addend.
// All returned gradients alias one tensor, matching the storage-sharing
// optimization.
func (a *Add) Backward(gradOut *tensor.Tensor, _ []*tensor.Tensor, _ *tensor.Tensor, _ any) []*tensor.Tensor {
	out := make([]*tensor.Tensor, a.N)
	for i := range out {
		out[i] = gradOut
	}
	return out
}

// ForwardArena implements graph.ArenaForwardOp.
func (a *Add) ForwardArena(ar *tensor.Arena, in []*tensor.Tensor) (*tensor.Tensor, any) {
	out := ar.GetRaw(in[0].Shape()...)
	out.CopyFrom(in[0])
	for _, x := range in[1:] {
		tensor.AXPY(out, 1, x)
	}
	return out, nil
}

// BackwardArena implements graph.ArenaBackwardOp: every gin entry
// aliases gradOut; the executor copies the aliases it cannot adopt.
func (a *Add) BackwardArena(_ *tensor.Arena, gradOut *tensor.Tensor, _ []*tensor.Tensor, _ []tensor.Shape, _ *tensor.Tensor, _ any, gin []*tensor.Tensor) {
	for i := range gin {
		gin[i] = gradOut
	}
}

// NeedsInput implements graph.Op.
func (a *Add) NeedsInput(int) bool { return false }

// NeedsOutput implements graph.Op.
func (a *Add) NeedsOutput() bool { return false }

// FLOPs implements graph.Op.
func (a *Add) FLOPs(in []tensor.Shape, _ tensor.Shape) int64 {
	return int64(len(in)-1) * int64(in[0].Elems())
}

// WorkspaceBytes implements graph.Op.
func (a *Add) WorkspaceBytes([]tensor.Shape, tensor.Shape) int64 { return 0 }

// ExtractPatch slices the spatial window [H0:H1) × [W0:W1) out of an
// NCHW tensor. Split-CNN inserts one per patch at the entry of a split
// region; its adjoint scatters the patch gradient back into a zero
// canvas.
type ExtractPatch struct {
	H0, H1, W0, W1 int
}

// Kind implements graph.Op.
func (e *ExtractPatch) Kind() string { return "extract_patch" }

// OutShape implements graph.Op.
func (e *ExtractPatch) OutShape(in []tensor.Shape) (tensor.Shape, error) {
	if len(in) != 1 || len(in[0]) != 4 {
		return nil, fmt.Errorf("extract_patch: want one NCHW input")
	}
	s := in[0]
	if e.H0 < 0 || e.H1 > s.H() || e.W0 < 0 || e.W1 > s.W() || e.H0 >= e.H1 || e.W0 >= e.W1 {
		return nil, fmt.Errorf("extract_patch: window [%d:%d)x[%d:%d) invalid for %v", e.H0, e.H1, e.W0, e.W1, s)
	}
	return tensor.Shape{s.N(), s.C(), e.H1 - e.H0, e.W1 - e.W0}, nil
}

// Forward implements graph.Op.
func (e *ExtractPatch) Forward(in []*tensor.Tensor) (*tensor.Tensor, any) {
	x := in[0]
	s := x.Shape()
	n, c, h, w := s.N(), s.C(), s.H(), s.W()
	ph, pw := e.H1-e.H0, e.W1-e.W0
	out := tensor.New(n, c, ph, pw)
	for nc := 0; nc < n*c; nc++ {
		src := x.Data()[nc*h*w : (nc+1)*h*w]
		dst := out.Data()[nc*ph*pw : (nc+1)*ph*pw]
		for y := 0; y < ph; y++ {
			copy(dst[y*pw:(y+1)*pw], src[(y+e.H0)*w+e.W0:(y+e.H0)*w+e.W1])
		}
	}
	return out, s
}

// Backward implements graph.Op.
func (e *ExtractPatch) Backward(gradOut *tensor.Tensor, _ []*tensor.Tensor, _ *tensor.Tensor, stash any) []*tensor.Tensor {
	s := stash.(tensor.Shape)
	n, c, h, w := s.N(), s.C(), s.H(), s.W()
	ph, pw := e.H1-e.H0, e.W1-e.W0
	gi := tensor.New(n, c, h, w)
	for nc := 0; nc < n*c; nc++ {
		src := gradOut.Data()[nc*ph*pw : (nc+1)*ph*pw]
		dst := gi.Data()[nc*h*w : (nc+1)*h*w]
		for y := 0; y < ph; y++ {
			copy(dst[(y+e.H0)*w+e.W0:(y+e.H0)*w+e.W1], src[y*pw:(y+1)*pw])
		}
	}
	return []*tensor.Tensor{gi}
}

// NeedsInput implements graph.Op.
func (e *ExtractPatch) NeedsInput(int) bool { return false }

// NeedsOutput implements graph.Op.
func (e *ExtractPatch) NeedsOutput() bool { return false }

// FLOPs implements graph.Op (pure data movement).
func (e *ExtractPatch) FLOPs([]tensor.Shape, tensor.Shape) int64 { return 0 }

// WorkspaceBytes implements graph.Op.
func (e *ExtractPatch) WorkspaceBytes([]tensor.Shape, tensor.Shape) int64 { return 0 }

// ConcatPatches reassembles an NH×NW grid of spatial patches into one
// feature map — the join point [Y_0, ..., Y_{n}]_D at the end of a split
// region. Inputs are patches in row-major (H-major) order; patches in
// one grid row must agree on H, patches in one grid column on W.
type ConcatPatches struct {
	NH, NW int
}

// Kind implements graph.Op.
func (c *ConcatPatches) Kind() string { return "concat_patches" }

// OutShape implements graph.Op.
func (c *ConcatPatches) OutShape(in []tensor.Shape) (tensor.Shape, error) {
	if c.NH < 1 || c.NW < 1 || len(in) != c.NH*c.NW {
		return nil, fmt.Errorf("concat_patches: want %dx%d inputs, got %d", c.NH, c.NW, len(in))
	}
	n, ch := in[0].N(), in[0].C()
	totalH := 0
	for i := 0; i < c.NH; i++ {
		rowH := in[i*c.NW].H()
		totalH += rowH
		for j := 0; j < c.NW; j++ {
			s := in[i*c.NW+j]
			if s.N() != n || s.C() != ch {
				return nil, fmt.Errorf("concat_patches: N/C mismatch %v vs %v", s, in[0])
			}
			if s.H() != rowH {
				return nil, fmt.Errorf("concat_patches: H mismatch in row %d: %v", i, s)
			}
		}
	}
	totalW := 0
	for j := 0; j < c.NW; j++ {
		colW := in[j].W()
		totalW += colW
		for i := 0; i < c.NH; i++ {
			if in[i*c.NW+j].W() != colW {
				return nil, fmt.Errorf("concat_patches: W mismatch in column %d", j)
			}
		}
	}
	return tensor.Shape{n, ch, totalH, totalW}, nil
}

type concatStash struct {
	hStarts, wStarts []int
}

// Forward implements graph.Op. The stash records where the patch
// boundaries fell so the backward pass can split the gradient.
func (c *ConcatPatches) Forward(in []*tensor.Tensor) (*tensor.Tensor, any) {
	st := &concatStash{hStarts: make([]int, c.NH), wStarts: make([]int, c.NW)}
	for i, off := 0, 0; i < c.NH; i++ {
		st.hStarts[i] = off
		off += in[i*c.NW].Shape().H()
	}
	for j, off := 0, 0; j < c.NW; j++ {
		st.wStarts[j] = off
		off += in[j].Shape().W()
	}
	rows := make([]*tensor.Tensor, c.NH)
	for i := 0; i < c.NH; i++ {
		rows[i] = tensor.ConcatSpatial(in[i*c.NW:(i+1)*c.NW], tensor.DimW)
	}
	return tensor.ConcatSpatial(rows, tensor.DimH), st
}

// Backward implements graph.Op: split the gradient back into patches.
func (c *ConcatPatches) Backward(gradOut *tensor.Tensor, _ []*tensor.Tensor, _ *tensor.Tensor, stash any) []*tensor.Tensor {
	st := stash.(*concatStash)
	hStarts, wStarts := st.hStarts, st.wStarts
	rows := tensor.SplitSpatial(gradOut, tensor.DimH, hStarts)
	out := make([]*tensor.Tensor, 0, c.NH*c.NW)
	for _, r := range rows {
		out = append(out, tensor.SplitSpatial(r, tensor.DimW, wStarts)...)
	}
	return out
}

// NeedsInput implements graph.Op.
func (c *ConcatPatches) NeedsInput(int) bool { return false }

// NeedsOutput implements graph.Op.
func (c *ConcatPatches) NeedsOutput() bool { return false }

// FLOPs implements graph.Op (pure data movement).
func (c *ConcatPatches) FLOPs([]tensor.Shape, tensor.Shape) int64 { return 0 }

// WorkspaceBytes implements graph.Op.
func (c *ConcatPatches) WorkspaceBytes([]tensor.Shape, tensor.Shape) int64 { return 0 }
