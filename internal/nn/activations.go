package nn

import (
	"fmt"
	"math/rand"

	"splitcnn/internal/tensor"
)

// ReLU is the rectified-linear activation. Its backward pass reads only
// its *output*, never its input — the property that makes the in-place
// ReLU storage optimization of §4.2 legal (input and output tensors may
// share one TSO).
type ReLU struct{}

// Kind implements graph.Op.
func (ReLU) Kind() string { return "relu" }

// PatchwiseSafe reports that ReLU commutes with spatial splitting.
func (ReLU) PatchwiseSafe() bool { return true }

// InPlaceEligible marks the op as computable in place (§4.2).
func (ReLU) InPlaceEligible() bool { return true }

// OutShape implements graph.Op.
func (ReLU) OutShape(in []tensor.Shape) (tensor.Shape, error) {
	if len(in) != 1 {
		return nil, fmt.Errorf("relu: want one input")
	}
	return in[0].Clone(), nil
}

// Forward implements graph.Op.
func (ReLU) Forward(in []*tensor.Tensor) (*tensor.Tensor, any) {
	out := tensor.New(in[0].Shape()...)
	tensor.ReLU(out, in[0])
	return out, nil
}

// ForwardArena implements graph.ArenaForwardOp.
func (ReLU) ForwardArena(a *tensor.Arena, in []*tensor.Tensor) (*tensor.Tensor, any) {
	out := a.GetRaw(in[0].Shape()...)
	tensor.ReLU(out, in[0])
	return out, nil
}

// Backward implements graph.Op.
func (ReLU) Backward(gradOut *tensor.Tensor, _ []*tensor.Tensor, out *tensor.Tensor, _ any) []*tensor.Tensor {
	gi := tensor.New(gradOut.Shape()...)
	tensor.ReLUBackward(gi, gradOut, out)
	return []*tensor.Tensor{gi}
}

// BackwardArena implements graph.ArenaBackwardOp.
func (ReLU) BackwardArena(a *tensor.Arena, gradOut *tensor.Tensor, _ []*tensor.Tensor, _ []tensor.Shape, out *tensor.Tensor, _ any, gin []*tensor.Tensor) {
	gi := a.GetRaw(gradOut.Shape()...)
	tensor.ReLUBackward(gi, gradOut, out)
	gin[0] = gi
}

// NeedsInput implements graph.Op.
func (ReLU) NeedsInput(int) bool { return false }

// NeedsOutput implements graph.Op.
func (ReLU) NeedsOutput() bool { return true }

// FLOPs implements graph.Op.
func (ReLU) FLOPs(in []tensor.Shape, _ tensor.Shape) int64 { return int64(in[0].Elems()) }

// WorkspaceBytes implements graph.Op.
func (ReLU) WorkspaceBytes([]tensor.Shape, tensor.Shape) int64 { return 0 }

// Dropout zeroes each element with probability P during training and
// scales survivors by 1/(1−P) (inverted dropout). A nil Rng or Training
// == false makes it the identity.
type Dropout struct {
	P        float64
	Training bool
	Rng      *rand.Rand
}

// Kind implements graph.Op.
func (d *Dropout) Kind() string { return "dropout" }

// SetTraining implements graph.ModalOp: inference mode makes dropout
// the identity.
func (d *Dropout) SetTraining(training bool) { d.Training = training }

// PatchwiseSafe reports that dropout commutes with spatial splitting.
func (d *Dropout) PatchwiseSafe() bool { return true }

// OutShape implements graph.Op.
func (d *Dropout) OutShape(in []tensor.Shape) (tensor.Shape, error) {
	if len(in) != 1 {
		return nil, fmt.Errorf("dropout: want one input")
	}
	return in[0].Clone(), nil
}

// Forward implements graph.Op. The stash is the keep mask.
func (d *Dropout) Forward(in []*tensor.Tensor) (*tensor.Tensor, any) {
	x := in[0]
	if !d.Training || d.Rng == nil || d.P <= 0 {
		return x.Clone(), nil
	}
	out := tensor.New(x.Shape()...)
	mask := make([]bool, x.Elems())
	scale := float32(1 / (1 - d.P))
	for i, v := range x.Data() {
		if d.Rng.Float64() >= d.P {
			mask[i] = true
			out.Data()[i] = v * scale
		}
	}
	return out, mask
}

// ForwardArena implements graph.ArenaForwardOp. Instead of a []bool
// mask, the arena path stashes a float32 tensor holding the per-element
// scale (0 for dropped, 1/(1−P) for kept): a *Tensor crosses the stash
// `any` boundary without boxing, and the backward pass becomes one
// elementwise multiply.
func (d *Dropout) ForwardArena(a *tensor.Arena, in []*tensor.Tensor) (*tensor.Tensor, any) {
	x := in[0]
	out := a.GetRaw(x.Shape()...)
	if !d.Training || d.Rng == nil || d.P <= 0 {
		out.CopyFrom(x)
		return out, nil
	}
	mask := a.GetRaw(x.Shape()...)
	scale := float32(1 / (1 - d.P))
	od, md := out.Data(), mask.Data()
	for i, v := range x.Data() {
		if d.Rng.Float64() >= d.P {
			md[i] = scale
			od[i] = v * scale
		} else {
			md[i] = 0
			od[i] = 0
		}
	}
	return out, mask
}

// Backward implements graph.Op.
func (d *Dropout) Backward(gradOut *tensor.Tensor, _ []*tensor.Tensor, _ *tensor.Tensor, stash any) []*tensor.Tensor {
	gi := tensor.New(gradOut.Shape()...)
	if stash == nil {
		gi.CopyFrom(gradOut)
		return []*tensor.Tensor{gi}
	}
	mask := stash.([]bool)
	scale := float32(1 / (1 - d.P))
	for i, g := range gradOut.Data() {
		if mask[i] {
			gi.Data()[i] = g * scale
		}
	}
	return []*tensor.Tensor{gi}
}

// BackwardArena implements graph.ArenaBackwardOp; the stash, when
// non-nil, is the scale-mask tensor from ForwardArena.
func (d *Dropout) BackwardArena(a *tensor.Arena, gradOut *tensor.Tensor, _ []*tensor.Tensor, _ []tensor.Shape, _ *tensor.Tensor, stash any, gin []*tensor.Tensor) {
	gi := a.GetRaw(gradOut.Shape()...)
	if stash == nil {
		gi.CopyFrom(gradOut)
		gin[0] = gi
		return
	}
	mask := stash.(*tensor.Tensor)
	tensor.Mul(gi, gradOut, mask)
	a.Put(mask)
	gin[0] = gi
}

// NeedsInput implements graph.Op.
func (d *Dropout) NeedsInput(int) bool { return false }

// NeedsOutput implements graph.Op.
func (d *Dropout) NeedsOutput() bool { return false }

// FLOPs implements graph.Op.
func (d *Dropout) FLOPs(in []tensor.Shape, _ tensor.Shape) int64 { return int64(in[0].Elems()) }

// WorkspaceBytes implements graph.Op.
func (d *Dropout) WorkspaceBytes([]tensor.Shape, tensor.Shape) int64 { return 0 }
