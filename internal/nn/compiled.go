// Compiled-path implementations: every op that can write its forward
// output into a caller-planned destination implements
// graph.ForwardIntoOp here, and the elementwise family additionally
// implements graph.InplaceOp / graph.NoopOp / graph.ReshapeOp so the
// compiler can fuse or elide it. Two contracts govern this file:
//
//   - Bit identity. Each ForwardInto/ForwardInplace must produce values
//     bit-identical to the op's Forward/ForwardArena: same expression,
//     same evaluation order, same float64→float32 cast points. That is
//     why the batch-norm family is folded by re-running its exact
//     inference affine in place rather than by folding the statistics
//     into conv weights, which would change the rounding.
//   - No destination allocation. dst is a fixed slab window; any
//     transient workspace comes from the arena and is returned before
//     the call ends, so a warmed compiled program allocates nothing.
package nn

import (
	"fmt"
	"math"

	"splitcnn/internal/autotune"
	"splitcnn/internal/tensor"
)

// ---- Conv ----

// ForwardInto implements graph.ForwardIntoOp. It consults the same
// autotuned dispatch as Forward/ForwardArena, so the interpreted and
// compiled paths always run the same backend for a given shape and
// stay bit-identical to each other; every backend's Into entry takes
// scratch from the pool or arena only, keeping the warmed compiled
// forward allocation-free.
func (c *Conv) ForwardInto(a *tensor.Arena, dst *tensor.Tensor, in []*tensor.Tensor) {
	var bias *tensor.Tensor
	if c.HasBias {
		bias = in[2]
	}
	switch c.algo(in[0], in[1]) {
	case autotune.Winograd:
		tensor.Conv2DWinogradInto(dst, in[0], in[1], bias, c.Params)
	case autotune.Direct:
		tensor.Conv2DDirectInto(dst, in[0], in[1], bias, c.Params)
	case autotune.FFT:
		tensor.Conv2DFFTInto(dst, in[0], in[1], bias, c.Params)
	default:
		tensor.Conv2DInto(a, dst, in[0], in[1], bias, c.Params)
	}
}

// ---- ReLU ----

// ForwardInto implements graph.ForwardIntoOp.
func (ReLU) ForwardInto(_ *tensor.Arena, dst *tensor.Tensor, in []*tensor.Tensor) {
	tensor.ReLU(dst, in[0])
}

// CanRunInplace implements graph.InplaceOp: always legal.
func (ReLU) CanRunInplace() bool { return true }

// ForwardInplace implements graph.InplaceOp (tensor.ReLU documents that
// dst may alias x).
func (ReLU) ForwardInplace(x *tensor.Tensor, _ []*tensor.Tensor) {
	tensor.ReLU(x, x)
}

// ---- Dropout ----

// identity reports whether the op forwards its input unchanged.
func (d *Dropout) identity() bool { return !d.Training || d.Rng == nil || d.P <= 0 }

// IsNoop implements graph.NoopOp: inference-mode dropout is elided.
func (d *Dropout) IsNoop() bool { return d.identity() }

// ForwardInto implements graph.ForwardIntoOp. Training mode draws the
// same per-element Rng sequence as Forward/ForwardArena, so a compiled
// forward and an interpreted forward over fresh ops with identically
// seeded Rngs produce bit-identical outputs.
func (d *Dropout) ForwardInto(_ *tensor.Arena, dst *tensor.Tensor, in []*tensor.Tensor) {
	x := in[0]
	if d.identity() {
		dst.CopyFrom(x)
		return
	}
	scale := float32(1 / (1 - d.P))
	od := dst.Data()
	for i, v := range x.Data() {
		if d.Rng.Float64() >= d.P {
			od[i] = v * scale
		} else {
			od[i] = 0
		}
	}
}

// ---- Flatten ----

// IsReshape implements graph.ReshapeOp: the compiler replaces flatten
// with a view of the producer's storage.
func (Flatten) IsReshape() bool { return true }

// ForwardInto implements graph.ForwardIntoOp (the materialized
// fallback when the input is not slab-backed).
func (Flatten) ForwardInto(_ *tensor.Arena, dst *tensor.Tensor, in []*tensor.Tensor) {
	dst.CopyFrom(in[0])
}

// ---- Linear ----

// ForwardInto implements graph.ForwardIntoOp.
func (Linear) ForwardInto(_ *tensor.Arena, dst *tensor.Tensor, in []*tensor.Tensor) {
	x, w, b := in[0], in[1], in[2]
	n, k := x.Shape()[0], w.Shape()[0]
	tensor.MatMulBT(dst, x, w)
	for r := 0; r < n; r++ {
		row := dst.Data()[r*k : (r+1)*k]
		for i := range row {
			row[i] += b.Data()[i]
		}
	}
}

// ---- Pooling ----

// ForwardInto implements graph.ForwardIntoOp. The forward-only compiled
// path never runs backward, so the argmax stash is skipped entirely.
func (m *MaxPool) ForwardInto(_ *tensor.Arena, dst *tensor.Tensor, in []*tensor.Tensor) {
	tensor.MaxPool2DInto(dst, nil, in[0], m.Params)
}

// ForwardInto implements graph.ForwardIntoOp.
func (ap *AvgPool) ForwardInto(_ *tensor.Arena, dst *tensor.Tensor, in []*tensor.Tensor) {
	tensor.AvgPool2DInto(dst, in[0], ap.Params)
}

// ForwardInto implements graph.ForwardIntoOp.
func (GlobalAvgPool) ForwardInto(_ *tensor.Arena, dst *tensor.Tensor, in []*tensor.Tensor) {
	s := in[0].Shape()
	p := tensor.ConvParams{KH: s.H(), KW: s.W(), SH: s.H(), SW: s.W()}
	tensor.AvgPool2DInto(dst, in[0], p)
}

// ---- Add ----

// ForwardInto implements graph.ForwardIntoOp.
func (a *Add) ForwardInto(_ *tensor.Arena, dst *tensor.Tensor, in []*tensor.Tensor) {
	dst.CopyFrom(in[0])
	for _, x := range in[1:] {
		tensor.AXPY(dst, 1, x)
	}
}

// ---- SoftmaxCrossEntropy ----

// ForwardInto implements graph.ForwardIntoOp; the probability matrix is
// transient scratch here (no backward pass will read it).
func (SoftmaxCrossEntropy) ForwardInto(a *tensor.Arena, dst *tensor.Tensor, in []*tensor.Tensor) {
	logits, labels := in[0], in[1]
	n, k := logits.Shape()[0], logits.Shape()[1]
	probs := a.GetRaw(n, k)
	tensor.Softmax(probs, logits)
	var loss float64
	for r := 0; r < n; r++ {
		c := int(labels.Data()[r])
		if c < 0 || c >= k {
			panic(fmt.Sprintf("softmax_xent: label %d out of range [0,%d)", c, k))
		}
		p := float64(probs.At(r, c))
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(p)
	}
	a.Put(probs)
	dst.Data()[0] = float32(loss / float64(n))
}

// ---- BatchNorm family ----
//
// The inference affine uses per-channel constants m = float32(mean[ch])
// and is = float32(invStd[ch]) — the exact cast points of the Forward
// methods. bnEvalCache precomputes those casts once per running-stat
// version, so a warmed compiled forward neither allocates the float64
// scratch nor recomputes the square roots; the applied values are
// bit-identical because the cast expressions are unchanged.

type bnEvalCache struct {
	version   uint64
	eps       float64
	m32, is32 []float32
}

// refresh rebuilds the precast statistics if the state's version, the
// epsilon, or the channel count changed since the last call.
func (c *bnEvalCache) refresh(state *BNState, eps float64) {
	v := state.Version()
	if c.m32 != nil && c.version == v && c.eps == eps && len(c.m32) == len(state.RunningMean) {
		return
	}
	n := len(state.RunningMean)
	if len(c.m32) != n {
		c.m32 = make([]float32, n)
		c.is32 = make([]float32, n)
	}
	for ch := 0; ch < n; ch++ {
		c.m32[ch] = float32(state.RunningMean[ch])
		c.is32[ch] = float32(1 / math.Sqrt(state.RunningVar[ch]+eps))
	}
	c.version, c.eps = v, eps
}

// bnBatchStats32 computes training-mode batch statistics exactly as the
// Forward methods do — float64 accumulation, the same variance clamp —
// updates the running estimates, and returns the precast per-channel
// constants.
func bnBatchStats32(x *tensor.Tensor, state *BNState, eps float64) (m32, is32 []float32) {
	s := x.Shape()
	n, c, plane := s.N(), s.C(), s.H()*s.W()
	cnt := float64(n * plane)
	mean := make([]float64, c)
	variance := make([]float64, c)
	m32 = make([]float32, c)
	is32 = make([]float32, c)
	for ch := 0; ch < c; ch++ {
		var sum, sq float64
		for bi := 0; bi < n; bi++ {
			base := (bi*c + ch) * plane
			for _, v := range x.Data()[base : base+plane] {
				f := float64(v)
				sum += f
				sq += f * f
			}
		}
		m := sum / cnt
		v := sq/cnt - m*m
		if v < 0 {
			v = 0
		}
		mean[ch] = m
		variance[ch] = v
		m32[ch] = float32(m)
		is32[ch] = float32(1 / math.Sqrt(v+eps))
	}
	state.Update(mean, variance)
	return m32, is32
}

// bnApply runs the normalization affine (and optional leaky ReLU with
// the given slope; slope < 0 means no activation) writing dst, which
// may alias x: each element is read once before it is written.
func bnApply(dst, x, gamma, beta *tensor.Tensor, m32, is32 []float32, slope float32) {
	s := x.Shape()
	n, c, plane := s.N(), s.C(), s.H()*s.W()
	for bi := 0; bi < n; bi++ {
		for ch := 0; ch < c; ch++ {
			base := (bi*c + ch) * plane
			g, bt := gamma.Data()[ch], beta.Data()[ch]
			m, is := m32[ch], is32[ch]
			src := x.Data()[base : base+plane]
			out := dst.Data()[base : base+plane]
			if slope < 0 {
				for i, v := range src {
					out[i] = (v-m)*is*g + bt
				}
			} else {
				for i, v := range src {
					z := (v-m)*is*g + bt
					if z < 0 {
						z *= slope
					}
					out[i] = z
				}
			}
		}
	}
}

// stats32 returns the per-channel constants for the op's current mode:
// cached running statistics in inference, fresh batch statistics (with
// the side-effecting running update, exactly like Forward) in training.
func (b *BatchNorm) stats32(x *tensor.Tensor) (m32, is32 []float32) {
	if b.Training {
		return bnBatchStats32(x, b.State, b.Eps)
	}
	b.cache.refresh(b.State, b.Eps)
	return b.cache.m32, b.cache.is32
}

// ForwardInto implements graph.ForwardIntoOp. Training mode computes
// batch statistics and updates the running estimates, exactly like
// Forward (the compiled path is forward-only; nothing is stashed).
func (b *BatchNorm) ForwardInto(_ *tensor.Arena, dst *tensor.Tensor, in []*tensor.Tensor) {
	m32, is32 := b.stats32(in[0])
	bnApply(dst, in[0], in[1], in[2], m32, is32, -1)
}

// CanRunInplace implements graph.InplaceOp: only the inference affine
// is folded; training-mode BN stays a regular step so the batch
// statistics and running-estimate update remain a single visible op.
// (BatchNorm deliberately does NOT implement InPlaceEligible — that
// marker feeds the hmms storage-sharing planner, whose plans for BN
// layers are pinned by existing tests; the compiler treats the marker
// as a veto when present, not a requirement.)
func (b *BatchNorm) CanRunInplace() bool { return !b.Training }

// ForwardInplace implements graph.InplaceOp.
func (b *BatchNorm) ForwardInplace(x *tensor.Tensor, in []*tensor.Tensor) {
	m32, is32 := b.stats32(x)
	bnApply(x, x, in[1], in[2], m32, is32, -1)
}

func (b *BNReLU) stats32(x *tensor.Tensor) (m32, is32 []float32) {
	if b.Training {
		return bnBatchStats32(x, b.State, b.Eps)
	}
	b.cache.refresh(b.State, b.Eps)
	return b.cache.m32, b.cache.is32
}

// ForwardInto implements graph.ForwardIntoOp.
func (b *BNReLU) ForwardInto(_ *tensor.Arena, dst *tensor.Tensor, in []*tensor.Tensor) {
	m32, is32 := b.stats32(in[0])
	bnApply(dst, in[0], in[1], in[2], m32, is32, float32(b.Slope))
}

// CanRunInplace implements graph.InplaceOp (see BatchNorm.CanRunInplace).
func (b *BNReLU) CanRunInplace() bool { return !b.Training }

// ForwardInplace implements graph.InplaceOp.
func (b *BNReLU) ForwardInplace(x *tensor.Tensor, in []*tensor.Tensor) {
	m32, is32 := b.stats32(x)
	bnApply(x, x, in[1], in[2], m32, is32, float32(b.Slope))
}
