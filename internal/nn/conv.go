// Package nn implements the neural-network operations used by the
// paper's models: convolution, pooling, batch normalization (including
// the memory-efficient recompute variant of In-Place ABN), ReLU,
// dropout, fully-connected layers, softmax cross-entropy loss, residual
// summation, and the patch extraction/concatenation ops Split-CNN
// inserts. Every op implements graph.Op — real arithmetic plus the
// stash/FLOPs/workspace metadata the HMMS memory planner consumes.
//
// Window-based ops (Conv, MaxPool, AvgPool) additionally expose their
// window geometry via Window/WithPad so the Split-CNN transformation in
// internal/core can re-derive per-patch padding; pointwise ops report
// themselves patch-safe via PatchwiseSafe.
package nn

import (
	"fmt"

	"splitcnn/internal/autotune"
	"splitcnn/internal/graph"
	"splitcnn/internal/tensor"
)

// Conv is a 2-D convolution op. Graph inputs: x, weight[, bias].
type Conv struct {
	Params  tensor.ConvParams
	HasBias bool
}

// NewConv returns a convolution with square kernel k, stride s and
// symmetric padding p, with bias.
func NewConv(k, s, p int) *Conv {
	return &Conv{Params: tensor.ConvParams{KH: k, KW: k, SH: s, SW: s, Pad: tensor.Symmetric(p)}, HasBias: true}
}

// Kind implements graph.Op.
func (c *Conv) Kind() string { return "conv" }

// Window exposes the op's window geometry to the Split-CNN transform.
func (c *Conv) Window() tensor.ConvParams { return c.Params }

// WithPad returns a copy of the op with different padding — the per-patch
// instantiation primitive of §3.1.
func (c *Conv) WithPad(p tensor.Pad2D) graph.Op {
	cp := *c
	cp.Params.Pad = p
	return &cp
}

func (c *Conv) nin() int {
	if c.HasBias {
		return 3
	}
	return 2
}

// OutShape implements graph.Op.
func (c *Conv) OutShape(in []tensor.Shape) (tensor.Shape, error) {
	if len(in) != c.nin() {
		return nil, fmt.Errorf("conv: %d inputs, want %d", len(in), c.nin())
	}
	x, w := in[0], in[1]
	if len(x) != 4 || len(w) != 4 {
		return nil, fmt.Errorf("conv: want NCHW x and OIHW weight, got %v, %v", x, w)
	}
	if w[1] != x.C() || w[2] != c.Params.KH || w[3] != c.Params.KW {
		return nil, fmt.Errorf("conv: weight %v incompatible with x %v and kernel (%d,%d)", w, x, c.Params.KH, c.Params.KW)
	}
	if c.HasBias && (len(in[2]) != 1 || in[2][0] != w[0]) {
		return nil, fmt.Errorf("conv: bias %v incompatible with weight %v", in[2], w)
	}
	oh, ow := c.Params.OutSize(x.H(), x.W())
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("conv: output size (%d,%d) for input %v", oh, ow, x)
	}
	return tensor.Shape{x.N(), w[0], oh, ow}, nil
}

// algo consults the process-wide autotuner for the algorithm to run on
// this call's shapes. With no tuned plan this is exactly the historic
// heuristic (Winograd when it applies, else im2col), so every untuned
// path — and every bit-identity test — behaves as before.
func (c *Conv) algo(x, weight *tensor.Tensor) autotune.Algo {
	return autotune.Default.Choose(c.Params, x.Shape(), weight.Shape()[0])
}

// Forward implements graph.Op. The backend is chosen per shape by the
// autotuner; the untuned default is the Winograd F(2x2, 3x3) fast path
// for 3x3 stride-1 convolutions — the very algorithm whose adoption
// §2.2.1 blames for making layers memory-bound — and im2col otherwise.
func (c *Conv) Forward(in []*tensor.Tensor) (*tensor.Tensor, any) {
	var bias *tensor.Tensor
	if c.HasBias {
		bias = in[2]
	}
	switch c.algo(in[0], in[1]) {
	case autotune.Winograd:
		return tensor.Conv2DWinograd(in[0], in[1], bias, c.Params), nil
	case autotune.Direct:
		return tensor.Conv2DDirect(in[0], in[1], bias, c.Params), nil
	case autotune.FFT:
		return tensor.Conv2DFFT(in[0], in[1], bias, c.Params), nil
	default:
		return tensor.Conv2D(in[0], in[1], bias, c.Params), nil
	}
}

// ForwardArena implements graph.ArenaForwardOp.
func (c *Conv) ForwardArena(a *tensor.Arena, in []*tensor.Tensor) (*tensor.Tensor, any) {
	var bias *tensor.Tensor
	if c.HasBias {
		bias = in[2]
	}
	switch c.algo(in[0], in[1]) {
	case autotune.Winograd:
		return tensor.Conv2DWinogradArena(a, in[0], in[1], bias, c.Params), nil
	case autotune.Direct:
		return tensor.Conv2DDirectArena(a, in[0], in[1], bias, c.Params), nil
	case autotune.FFT:
		return tensor.Conv2DFFTArena(a, in[0], in[1], bias, c.Params), nil
	default:
		return tensor.Conv2DArena(a, in[0], in[1], bias, c.Params), nil
	}
}

// Backward implements graph.Op.
func (c *Conv) Backward(gradOut *tensor.Tensor, in []*tensor.Tensor, _ *tensor.Tensor, _ any) []*tensor.Tensor {
	x, w := in[0], in[1]
	gw := tensor.New(w.Shape()...)
	var gb *tensor.Tensor
	if c.HasBias {
		gb = tensor.New(w.Shape()[0])
	}
	gx := tensor.Conv2DBackward(x, w, gradOut, c.Params, gw, gb, true)
	out := []*tensor.Tensor{gx, gw}
	if c.HasBias {
		out = append(out, gb)
	}
	return out
}

// BackwardArena implements graph.ArenaBackwardOp.
func (c *Conv) BackwardArena(a *tensor.Arena, gradOut *tensor.Tensor, in []*tensor.Tensor, _ []tensor.Shape, _ *tensor.Tensor, _ any, gin []*tensor.Tensor) {
	x, w := in[0], in[1]
	gw := a.Get(w.Shape()...) // zeroed: the weight-gradient GEMM accumulates
	var gb *tensor.Tensor
	if c.HasBias {
		gb = a.Get(w.Shape()[0])
	}
	gx := tensor.Conv2DBackwardArena(a, x, w, gradOut, c.Params, gw, gb, true)
	gin[0], gin[1] = gx, gw
	if c.HasBias {
		gin[2] = gb
	}
}

// NeedsInput implements graph.Op: the input feature map and the weights
// are both read again in the backward pass; the bias is not.
func (c *Conv) NeedsInput(i int) bool { return i <= 1 }

// NeedsOutput implements graph.Op.
func (c *Conv) NeedsOutput() bool { return false }

// FLOPs implements graph.Op: 2·N·Cout·OH·OW·Cin·KH·KW multiply-adds.
func (c *Conv) FLOPs(in []tensor.Shape, out tensor.Shape) int64 {
	x := in[0]
	return 2 * int64(out.Elems()) * int64(x.C()) * int64(c.Params.KH) * int64(c.Params.KW)
}

// MaxConvWorkspaceBytes bounds any single convolution's scratch space,
// mirroring the workspace limit deep-learning frameworks hand cuDNN
// when choosing an algorithm (1 GiB here).
const MaxConvWorkspaceBytes = 1 << 30

// WorkspaceBytes implements graph.Op: the convolution scratch buffer,
// this repository's analogue of the cuDNN workspace whose reuse across
// patches is one of the two memory wins of §6.3. With a tuned plan the
// declared workspace follows the algorithm that will actually run
// (Winograd's transformed tiles, the FFT spectra, zero for the direct
// loop); untuned sites keep the historic estimate — the full im2col
// lowering capped at twice the input+output footprint and at the
// framework workspace limit — preserving the property that matters to
// Split-CNN: workspace scales with the layer and shrinks per patch.
func (c *Conv) WorkspaceBytes(in []tensor.Shape, out tensor.Shape) int64 {
	x := in[0]
	if algo, ok := autotune.Default.Plan(c.Params, x, out.C()); ok {
		switch algo {
		case autotune.Winograd:
			return min(tensor.WinogradWorkspaceBytes(x, out.C(), c.Params), MaxConvWorkspaceBytes)
		case autotune.FFT:
			return min(tensor.FFTConvWorkspaceBytes(x, out.C(), c.Params), MaxConvWorkspaceBytes)
		case autotune.Direct:
			return 0
		}
	}
	oh, ow := out.H(), out.W()
	im2col := int64(x.C()*c.Params.KH*c.Params.KW) * int64(x.N()*oh*ow) * 4
	return min(im2col, 2*(x.Bytes()+out.Bytes()), MaxConvWorkspaceBytes)
}
