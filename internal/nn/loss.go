package nn

import (
	"fmt"
	"math"

	"splitcnn/internal/tensor"
)

// SoftmaxCrossEntropy computes the mean softmax cross-entropy loss over
// a batch. Graph inputs: logits [N, K] and labels [N] (class indices
// stored as float32, which keeps the dataflow tensor-only). The output
// is a [1] scalar.
type SoftmaxCrossEntropy struct{}

// Kind implements graph.Op.
func (SoftmaxCrossEntropy) Kind() string { return "softmax_xent" }

// OutShape implements graph.Op.
func (SoftmaxCrossEntropy) OutShape(in []tensor.Shape) (tensor.Shape, error) {
	if len(in) != 2 {
		return nil, fmt.Errorf("softmax_xent: want logits and labels")
	}
	if len(in[0]) != 2 || len(in[1]) != 1 || in[0][0] != in[1][0] {
		return nil, fmt.Errorf("softmax_xent: logits %v and labels %v incompatible", in[0], in[1])
	}
	return tensor.Shape{1}, nil
}

// Forward implements graph.Op. The stash holds the softmax probabilities
// and the labels for the backward pass.
func (SoftmaxCrossEntropy) Forward(in []*tensor.Tensor) (*tensor.Tensor, any) {
	logits, labels := in[0], in[1]
	n, k := logits.Shape()[0], logits.Shape()[1]
	probs := tensor.New(n, k)
	tensor.Softmax(probs, logits)
	var loss float64
	for r := 0; r < n; r++ {
		c := int(labels.Data()[r])
		if c < 0 || c >= k {
			panic(fmt.Sprintf("softmax_xent: label %d out of range [0,%d)", c, k))
		}
		p := float64(probs.At(r, c))
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(p)
	}
	out := tensor.New(1)
	out.Data()[0] = float32(loss / float64(n))
	return out, probs
}

// ForwardArena implements graph.ArenaForwardOp.
func (SoftmaxCrossEntropy) ForwardArena(a *tensor.Arena, in []*tensor.Tensor) (*tensor.Tensor, any) {
	logits, labels := in[0], in[1]
	n, k := logits.Shape()[0], logits.Shape()[1]
	probs := a.GetRaw(n, k)
	tensor.Softmax(probs, logits)
	var loss float64
	for r := 0; r < n; r++ {
		c := int(labels.Data()[r])
		if c < 0 || c >= k {
			panic(fmt.Sprintf("softmax_xent: label %d out of range [0,%d)", c, k))
		}
		p := float64(probs.At(r, c))
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(p)
	}
	out := a.GetRaw(1)
	out.Data()[0] = float32(loss / float64(n))
	return out, probs
}

// Backward implements graph.Op: d loss / d logit = (p − onehot) / N.
func (SoftmaxCrossEntropy) Backward(gradOut *tensor.Tensor, in []*tensor.Tensor, _ *tensor.Tensor, stash any) []*tensor.Tensor {
	probs := stash.(*tensor.Tensor)
	labels := in[1]
	n, k := probs.Shape()[0], probs.Shape()[1]
	g := gradOut.Data()[0]
	gl := tensor.New(n, k)
	inv := g / float32(n)
	for r := 0; r < n; r++ {
		c := int(labels.Data()[r])
		row := probs.Data()[r*k : (r+1)*k]
		dst := gl.Data()[r*k : (r+1)*k]
		for i, p := range row {
			dst[i] = p * inv
		}
		dst[c] -= inv
	}
	return []*tensor.Tensor{gl, nil}
}

// BackwardArena implements graph.ArenaBackwardOp; it returns the
// stashed probability matrix to the arena once the logit gradient has
// been formed.
func (SoftmaxCrossEntropy) BackwardArena(a *tensor.Arena, gradOut *tensor.Tensor, in []*tensor.Tensor, _ []tensor.Shape, _ *tensor.Tensor, stash any, gin []*tensor.Tensor) {
	probs := stash.(*tensor.Tensor)
	labels := in[1]
	n, k := probs.Shape()[0], probs.Shape()[1]
	g := gradOut.Data()[0]
	gl := a.GetRaw(n, k)
	inv := g / float32(n)
	for r := 0; r < n; r++ {
		c := int(labels.Data()[r])
		row := probs.Data()[r*k : (r+1)*k]
		dst := gl.Data()[r*k : (r+1)*k]
		for i, p := range row {
			dst[i] = p * inv
		}
		dst[c] -= inv
	}
	a.Put(probs)
	gin[0], gin[1] = gl, nil
}

// NeedsInput implements graph.Op: labels are needed; logits are not
// (the stashed probabilities suffice).
func (SoftmaxCrossEntropy) NeedsInput(i int) bool { return i == 1 }

// NeedsOutput implements graph.Op.
func (SoftmaxCrossEntropy) NeedsOutput() bool { return false }

// FLOPs implements graph.Op.
func (SoftmaxCrossEntropy) FLOPs(in []tensor.Shape, _ tensor.Shape) int64 {
	return 5 * int64(in[0].Elems())
}

// WorkspaceBytes implements graph.Op: the probability matrix.
func (SoftmaxCrossEntropy) WorkspaceBytes(in []tensor.Shape, _ tensor.Shape) int64 {
	return in[0].Bytes()
}
