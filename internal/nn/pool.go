package nn

import (
	"fmt"

	"splitcnn/internal/graph"
	"splitcnn/internal/tensor"
)

// MaxPool is a max-pooling op. Like cuDNN, its backward pass reads the
// input feature map (we recompute the argmax rather than stash index
// buffers), so pooling layers produce intermediate results that must be
// kept or offloaded — the very layers Figure 1 shows never have time to
// offload themselves.
type MaxPool struct {
	Params tensor.ConvParams
}

// NewMaxPool returns a max pool with square kernel k and stride s.
func NewMaxPool(k, s int) *MaxPool {
	return &MaxPool{Params: tensor.ConvParams{KH: k, KW: k, SH: s, SW: s}}
}

// Kind implements graph.Op.
func (m *MaxPool) Kind() string { return "maxpool" }

// Window exposes the window geometry to the Split-CNN transform.
func (m *MaxPool) Window() tensor.ConvParams { return m.Params }

// WithPad returns a copy with different padding.
func (m *MaxPool) WithPad(p tensor.Pad2D) graph.Op {
	cp := *m
	cp.Params.Pad = p
	return &cp
}

// OutShape implements graph.Op.
func (m *MaxPool) OutShape(in []tensor.Shape) (tensor.Shape, error) {
	return poolOutShape("maxpool", m.Params, in)
}

// Forward implements graph.Op.
func (m *MaxPool) Forward(in []*tensor.Tensor) (*tensor.Tensor, any) {
	out, _ := tensor.MaxPool2D(in[0], m.Params)
	return out, nil
}

// Backward implements graph.Op.
func (m *MaxPool) Backward(gradOut *tensor.Tensor, in []*tensor.Tensor, _ *tensor.Tensor, _ any) []*tensor.Tensor {
	x := in[0]
	_, arg := tensor.MaxPool2D(x, m.Params)
	s := x.Shape()
	return []*tensor.Tensor{tensor.MaxPool2DBackward(gradOut, arg, m.Params, s.N(), s.C(), s.H(), s.W())}
}

// ForwardArena implements graph.ArenaForwardOp. Unlike the plain path,
// it stashes the argmax tensor so the backward pass scatters directly
// instead of re-running the pooling window search.
func (m *MaxPool) ForwardArena(a *tensor.Arena, in []*tensor.Tensor) (*tensor.Tensor, any) {
	out, arg := tensor.MaxPool2DArena(a, in[0], m.Params)
	return out, arg
}

// BackwardArena implements graph.ArenaBackwardOp.
func (m *MaxPool) BackwardArena(a *tensor.Arena, gradOut *tensor.Tensor, in []*tensor.Tensor, inShapes []tensor.Shape, _ *tensor.Tensor, stash any, gin []*tensor.Tensor) {
	arg, _ := stash.(*tensor.Tensor)
	if arg == nil {
		_, arg = tensor.MaxPool2DArena(a, in[0], m.Params)
	}
	s := inShapes[0]
	gin[0] = tensor.MaxPool2DBackwardArena(a, gradOut, arg, m.Params, s.N(), s.C(), s.H(), s.W())
	a.Put(arg)
}

// NeedsInput implements graph.Op.
func (m *MaxPool) NeedsInput(i int) bool { return true }

// NeedsOutput implements graph.Op.
func (m *MaxPool) NeedsOutput() bool { return false }

// FLOPs implements graph.Op: one compare per window element.
func (m *MaxPool) FLOPs(in []tensor.Shape, out tensor.Shape) int64 {
	return int64(out.Elems()) * int64(m.Params.KH*m.Params.KW)
}

// WorkspaceBytes implements graph.Op.
func (m *MaxPool) WorkspaceBytes([]tensor.Shape, tensor.Shape) int64 { return 0 }

// AvgPool is an average-pooling op (count_include_pad semantics).
type AvgPool struct {
	Params tensor.ConvParams
}

// NewAvgPool returns an average pool with square kernel k and stride s.
func NewAvgPool(k, s int) *AvgPool {
	return &AvgPool{Params: tensor.ConvParams{KH: k, KW: k, SH: s, SW: s}}
}

// Kind implements graph.Op.
func (a *AvgPool) Kind() string { return "avgpool" }

// Window exposes the window geometry to the Split-CNN transform.
func (a *AvgPool) Window() tensor.ConvParams { return a.Params }

// WithPad returns a copy with different padding.
func (a *AvgPool) WithPad(p tensor.Pad2D) graph.Op {
	cp := *a
	cp.Params.Pad = p
	return &cp
}

// OutShape implements graph.Op.
func (a *AvgPool) OutShape(in []tensor.Shape) (tensor.Shape, error) {
	return poolOutShape("avgpool", a.Params, in)
}

// Forward implements graph.Op. The stash records the input shape, which
// the linear adjoint needs.
func (a *AvgPool) Forward(in []*tensor.Tensor) (*tensor.Tensor, any) {
	return tensor.AvgPool2D(in[0], a.Params), in[0].Shape()
}

// Backward implements graph.Op. Average pooling is linear, so its
// adjoint needs neither input nor output.
func (a *AvgPool) Backward(gradOut *tensor.Tensor, _ []*tensor.Tensor, _ *tensor.Tensor, stash any) []*tensor.Tensor {
	s := stash.(tensor.Shape)
	return []*tensor.Tensor{tensor.AvgPool2DBackward(gradOut, a.Params, s.N(), s.C(), s.H(), s.W())}
}

// ForwardArena implements graph.ArenaForwardOp. No stash: the adjoint
// recovers the input shape from the executor's static shape table.
func (ap *AvgPool) ForwardArena(a *tensor.Arena, in []*tensor.Tensor) (*tensor.Tensor, any) {
	return tensor.AvgPool2DArena(a, in[0], ap.Params), nil
}

// BackwardArena implements graph.ArenaBackwardOp.
func (ap *AvgPool) BackwardArena(a *tensor.Arena, gradOut *tensor.Tensor, _ []*tensor.Tensor, inShapes []tensor.Shape, _ *tensor.Tensor, _ any, gin []*tensor.Tensor) {
	s := inShapes[0]
	gin[0] = tensor.AvgPool2DBackwardArena(a, gradOut, ap.Params, s.N(), s.C(), s.H(), s.W())
}

// NeedsInput implements graph.Op.
func (a *AvgPool) NeedsInput(int) bool { return false }

// NeedsOutput implements graph.Op.
func (a *AvgPool) NeedsOutput() bool { return false }

// FLOPs implements graph.Op.
func (a *AvgPool) FLOPs(in []tensor.Shape, out tensor.Shape) int64 {
	return int64(out.Elems()) * int64(a.Params.KH*a.Params.KW)
}

// WorkspaceBytes implements graph.Op.
func (a *AvgPool) WorkspaceBytes([]tensor.Shape, tensor.Shape) int64 { return 0 }

// GlobalAvgPool averages each channel plane to a single value,
// producing [N, C, 1, 1]. It is the canonical head of the ResNet family.
type GlobalAvgPool struct{}

// Kind implements graph.Op.
func (GlobalAvgPool) Kind() string { return "gap" }

// OutShape implements graph.Op.
func (GlobalAvgPool) OutShape(in []tensor.Shape) (tensor.Shape, error) {
	if len(in) != 1 || len(in[0]) != 4 {
		return nil, fmt.Errorf("gap: want one NCHW input, got %v", in)
	}
	return tensor.Shape{in[0].N(), in[0].C(), 1, 1}, nil
}

// Forward implements graph.Op.
func (GlobalAvgPool) Forward(in []*tensor.Tensor) (*tensor.Tensor, any) {
	x := in[0]
	s := x.Shape()
	p := tensor.ConvParams{KH: s.H(), KW: s.W(), SH: s.H(), SW: s.W()}
	return tensor.AvgPool2D(x, p), s
}

// Backward implements graph.Op.
func (GlobalAvgPool) Backward(gradOut *tensor.Tensor, _ []*tensor.Tensor, _ *tensor.Tensor, stash any) []*tensor.Tensor {
	s := stash.(tensor.Shape)
	p := tensor.ConvParams{KH: s.H(), KW: s.W(), SH: s.H(), SW: s.W()}
	return []*tensor.Tensor{tensor.AvgPool2DBackward(gradOut, p, s.N(), s.C(), s.H(), s.W())}
}

// ForwardArena implements graph.ArenaForwardOp.
func (GlobalAvgPool) ForwardArena(a *tensor.Arena, in []*tensor.Tensor) (*tensor.Tensor, any) {
	x := in[0]
	s := x.Shape()
	p := tensor.ConvParams{KH: s.H(), KW: s.W(), SH: s.H(), SW: s.W()}
	return tensor.AvgPool2DArena(a, x, p), nil
}

// BackwardArena implements graph.ArenaBackwardOp.
func (GlobalAvgPool) BackwardArena(a *tensor.Arena, gradOut *tensor.Tensor, _ []*tensor.Tensor, inShapes []tensor.Shape, _ *tensor.Tensor, _ any, gin []*tensor.Tensor) {
	s := inShapes[0]
	p := tensor.ConvParams{KH: s.H(), KW: s.W(), SH: s.H(), SW: s.W()}
	gin[0] = tensor.AvgPool2DBackwardArena(a, gradOut, p, s.N(), s.C(), s.H(), s.W())
}

// NeedsInput implements graph.Op.
func (GlobalAvgPool) NeedsInput(int) bool { return false }

// NeedsOutput implements graph.Op.
func (GlobalAvgPool) NeedsOutput() bool { return false }

// FLOPs implements graph.Op.
func (GlobalAvgPool) FLOPs(in []tensor.Shape, _ tensor.Shape) int64 {
	return int64(in[0].Elems())
}

// WorkspaceBytes implements graph.Op.
func (GlobalAvgPool) WorkspaceBytes([]tensor.Shape, tensor.Shape) int64 { return 0 }

func poolOutShape(kind string, p tensor.ConvParams, in []tensor.Shape) (tensor.Shape, error) {
	if len(in) != 1 || len(in[0]) != 4 {
		return nil, fmt.Errorf("%s: want one NCHW input, got %v", kind, in)
	}
	x := in[0]
	oh, ow := p.OutSize(x.H(), x.W())
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("%s: output size (%d,%d) for input %v", kind, oh, ow, x)
	}
	return tensor.Shape{x.N(), x.C(), oh, ow}, nil
}
