package nn

import (
	"fmt"
	"math"
	"sync"

	"splitcnn/internal/tensor"
)

// BNState holds the running statistics of one batch-normalization layer.
// States live outside the op so that independently built graphs (the
// unsplit network, split variants, per-minibatch stochastic rewrites)
// share them, exactly like trainable parameters do. The mutex guards
// running-statistic updates when data-parallel workers execute replicas
// concurrently (train.DataParallel).
type BNState struct {
	Name        string
	RunningMean []float64
	RunningVar  []float64
	Momentum    float64

	mu sync.Mutex
	// version counts Update calls; the compiled execution path uses it
	// to cache the precast inference statistics between forwards.
	version uint64
}

// Update folds fresh batch statistics into the running estimates.
func (s *BNState) Update(mean, variance []float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.version++
	for ch := range mean {
		s.RunningMean[ch] = (1-s.Momentum)*s.RunningMean[ch] + s.Momentum*mean[ch]
		s.RunningVar[ch] = (1-s.Momentum)*s.RunningVar[ch] + s.Momentum*variance[ch]
	}
}

// Version returns the number of Update calls so far. Callers that
// mutate RunningMean/RunningVar directly (checkpoint restore) should
// call Invalidate instead of tracking versions themselves.
func (s *BNState) Version() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.version
}

// Invalidate bumps the version so cached derived statistics are
// recomputed; call it after mutating the running statistics directly.
func (s *BNState) Invalidate() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.version++
}

// NewBNState returns fresh running statistics for c channels.
func NewBNState(name string, c int) *BNState {
	s := &BNState{Name: name, RunningMean: make([]float64, c), RunningVar: make([]float64, c), Momentum: 0.1}
	for i := range s.RunningVar {
		s.RunningVar[i] = 1
	}
	return s
}

// BatchNorm normalizes each channel over (N, H, W). Graph inputs:
// x, gamma, beta.
//
// Two memory behaviours are supported, mirroring §6.3's adoption of
// In-Place Activated BatchNorm [Bulò et al.]:
//
//   - Recompute == false (default): the backward pass reads the stashed
//     input feature map, so BN contributes its input to the offload set —
//     this is what makes vanilla ResNet only ~55% offloadable (Fig. 1).
//   - Recompute == true: the backward pass reconstructs the normalized
//     activation from the layer *output* (x̂ = (y − β)/γ) and never needs
//     the input, trading a little arithmetic for offloadable bytes; the
//     paper reports this raises ResNet-18's offloadable fraction to 70%.
type BatchNorm struct {
	State     *BNState
	Eps       float64
	Recompute bool
	// Training selects batch statistics (true) or running statistics.
	Training bool
	// cache holds the precast inference statistics for the compiled
	// execution path (see compiled.go).
	cache bnEvalCache
}

// NewBatchNorm returns a train-mode batch normalization bound to state.
func NewBatchNorm(state *BNState) *BatchNorm {
	return &BatchNorm{State: state, Eps: 1e-5, Training: true}
}

type bnStash struct {
	mean, invStd []float64
}

// SetTraining implements graph.ModalOp: inference mode normalizes with
// the running statistics and never updates them.
func (b *BatchNorm) SetTraining(training bool) { b.Training = training }

// Kind implements graph.Op.
func (b *BatchNorm) Kind() string { return "batchnorm" }

// PatchwiseSafe reports that the op may be applied independently per
// spatial patch. Per-patch application computes statistics over the
// patch rather than the full feature map — precisely the semantic change
// Split-CNN embraces (§3).
func (b *BatchNorm) PatchwiseSafe() bool { return true }

// OutShape implements graph.Op.
func (b *BatchNorm) OutShape(in []tensor.Shape) (tensor.Shape, error) {
	if len(in) != 3 {
		return nil, fmt.Errorf("batchnorm: want x, gamma, beta")
	}
	x := in[0]
	if len(x) != 4 {
		return nil, fmt.Errorf("batchnorm: want NCHW input, got %v", x)
	}
	c := x.C()
	if len(in[1]) != 1 || in[1][0] != c || len(in[2]) != 1 || in[2][0] != c {
		return nil, fmt.Errorf("batchnorm: gamma %v / beta %v incompatible with %v", in[1], in[2], x)
	}
	return x.Clone(), nil
}

// Forward implements graph.Op.
func (b *BatchNorm) Forward(in []*tensor.Tensor) (*tensor.Tensor, any) {
	x, gamma, beta := in[0], in[1], in[2]
	s := x.Shape()
	n, c, h, w := s.N(), s.C(), s.H(), s.W()
	plane := h * w
	cnt := float64(n * plane)
	mean := make([]float64, c)
	variance := make([]float64, c)
	invStd := make([]float64, c)
	if b.Training {
		for ch := 0; ch < c; ch++ {
			var sum, sq float64
			for bi := 0; bi < n; bi++ {
				base := (bi*c + ch) * plane
				for _, v := range x.Data()[base : base+plane] {
					f := float64(v)
					sum += f
					sq += f * f
				}
			}
			m := sum / cnt
			v := sq/cnt - m*m
			if v < 0 {
				v = 0
			}
			mean[ch] = m
			variance[ch] = v
			invStd[ch] = 1 / math.Sqrt(v+b.Eps)
		}
		b.State.Update(mean, variance)
	} else {
		for ch := 0; ch < c; ch++ {
			mean[ch] = b.State.RunningMean[ch]
			invStd[ch] = 1 / math.Sqrt(b.State.RunningVar[ch]+b.Eps)
		}
	}
	out := tensor.New(s...)
	for bi := 0; bi < n; bi++ {
		for ch := 0; ch < c; ch++ {
			base := (bi*c + ch) * plane
			g, bt := gamma.Data()[ch], beta.Data()[ch]
			m, is := float32(mean[ch]), float32(invStd[ch])
			src := x.Data()[base : base+plane]
			dst := out.Data()[base : base+plane]
			for i, v := range src {
				dst[i] = (v-m)*is*g + bt
			}
		}
	}
	return out, &bnStash{mean: mean, invStd: invStd}
}

// Backward implements graph.Op.
func (b *BatchNorm) Backward(gradOut *tensor.Tensor, in []*tensor.Tensor, out *tensor.Tensor, stash any) []*tensor.Tensor {
	st := stash.(*bnStash)
	gamma, beta := in[1], in[2]
	s := gradOut.Shape()
	n, c, h, w := s.N(), s.C(), s.H(), s.W()
	plane := h * w
	cnt := float64(n * plane)

	// xhat: either from the stashed input or recomputed from the output.
	xhat := tensor.New(s...)
	if b.Recompute {
		for bi := 0; bi < n; bi++ {
			for ch := 0; ch < c; ch++ {
				base := (bi*c + ch) * plane
				g, bt := gamma.Data()[ch], beta.Data()[ch]
				if g == 0 {
					g = 1e-12 // guard: γ=0 loses information; avoid Inf
				}
				src := out.Data()[base : base+plane]
				dst := xhat.Data()[base : base+plane]
				for i, v := range src {
					dst[i] = (v - bt) / g
				}
			}
		}
	} else {
		x := in[0]
		for bi := 0; bi < n; bi++ {
			for ch := 0; ch < c; ch++ {
				base := (bi*c + ch) * plane
				m, is := float32(st.mean[ch]), float32(st.invStd[ch])
				src := x.Data()[base : base+plane]
				dst := xhat.Data()[base : base+plane]
				for i, v := range src {
					dst[i] = (v - m) * is
				}
			}
		}
	}

	gGamma := tensor.New(c)
	gBeta := tensor.New(c)
	sumG := make([]float64, c)  // Σ gradOut per channel
	sumGX := make([]float64, c) // Σ gradOut·x̂ per channel
	for bi := 0; bi < n; bi++ {
		for ch := 0; ch < c; ch++ {
			base := (bi*c + ch) * plane
			gsrc := gradOut.Data()[base : base+plane]
			xsrc := xhat.Data()[base : base+plane]
			var sg, sgx float64
			for i, g := range gsrc {
				sg += float64(g)
				sgx += float64(g) * float64(xsrc[i])
			}
			sumG[ch] += sg
			sumGX[ch] += sgx
		}
	}
	for ch := 0; ch < c; ch++ {
		gGamma.Data()[ch] = float32(sumGX[ch])
		gBeta.Data()[ch] = float32(sumG[ch])
	}

	gradX := tensor.New(s...)
	var mg, mgx []float64
	if b.Training {
		mg, mgx = sumG, sumGX
	}
	for bi := 0; bi < n; bi++ {
		for ch := 0; ch < c; ch++ {
			base := (bi*c + ch) * plane
			g := float64(gamma.Data()[ch])
			is := st.invStd[ch]
			gsrc := gradOut.Data()[base : base+plane]
			xsrc := xhat.Data()[base : base+plane]
			dst := gradX.Data()[base : base+plane]
			if b.Training {
				mG, mGX := mg[ch]/cnt, mgx[ch]/cnt
				for i, gv := range gsrc {
					dst[i] = float32(g * is * (float64(gv) - mG - float64(xsrc[i])*mGX))
				}
			} else {
				for i, gv := range gsrc {
					dst[i] = float32(g * is * float64(gv))
				}
			}
		}
	}
	_ = beta
	return []*tensor.Tensor{gradX, gGamma, gBeta}
}

// NeedsInput implements graph.Op: the input feature map is stashed only
// in the non-recompute variant; gamma and beta are always needed.
func (b *BatchNorm) NeedsInput(i int) bool {
	if i == 0 {
		return !b.Recompute
	}
	return true
}

// NeedsOutput implements graph.Op: the recompute variant reconstructs
// x̂ from the output instead.
func (b *BatchNorm) NeedsOutput() bool { return b.Recompute }

// FLOPs implements graph.Op: roughly 10 ops per element (two reduction
// passes plus the normalization) — a thoroughly memory-bound layer.
func (b *BatchNorm) FLOPs(in []tensor.Shape, _ tensor.Shape) int64 {
	return 10 * int64(in[0].Elems())
}

// WorkspaceBytes implements graph.Op.
func (b *BatchNorm) WorkspaceBytes([]tensor.Shape, tensor.Shape) int64 { return 0 }
