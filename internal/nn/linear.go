package nn

import (
	"fmt"

	"splitcnn/internal/tensor"
)

// Flatten reshapes [N, C, H, W] to [N, C·H·W].
type Flatten struct{}

// Kind implements graph.Op.
func (Flatten) Kind() string { return "flatten" }

// OutShape implements graph.Op.
func (Flatten) OutShape(in []tensor.Shape) (tensor.Shape, error) {
	if len(in) != 1 || len(in[0]) < 2 {
		return nil, fmt.Errorf("flatten: want one input of rank >= 2")
	}
	return tensor.Shape{in[0][0], in[0].Elems() / in[0][0]}, nil
}

// Forward implements graph.Op.
func (Flatten) Forward(in []*tensor.Tensor) (*tensor.Tensor, any) {
	s := in[0].Shape()
	return in[0].Clone().Reshape(s[0], in[0].Elems()/s[0]), s
}

// Backward implements graph.Op.
func (Flatten) Backward(gradOut *tensor.Tensor, _ []*tensor.Tensor, _ *tensor.Tensor, stash any) []*tensor.Tensor {
	s := stash.(tensor.Shape)
	return []*tensor.Tensor{gradOut.Clone().Reshape(s...)}
}

// ForwardArena implements graph.ArenaForwardOp. No stash: the backward
// pass recovers the input shape from the executor's static shape table.
func (Flatten) ForwardArena(a *tensor.Arena, in []*tensor.Tensor) (*tensor.Tensor, any) {
	s := in[0].Shape()
	out := a.GetRaw(s[0], in[0].Elems()/s[0])
	out.CopyFrom(in[0])
	return out, nil
}

// BackwardArena implements graph.ArenaBackwardOp.
func (Flatten) BackwardArena(a *tensor.Arena, gradOut *tensor.Tensor, _ []*tensor.Tensor, inShapes []tensor.Shape, _ *tensor.Tensor, _ any, gin []*tensor.Tensor) {
	gi := a.GetRaw(inShapes[0]...)
	gi.CopyFrom(gradOut)
	gin[0] = gi
}

// NeedsInput implements graph.Op.
func (Flatten) NeedsInput(int) bool { return false }

// NeedsOutput implements graph.Op.
func (Flatten) NeedsOutput() bool { return false }

// FLOPs implements graph.Op.
func (Flatten) FLOPs([]tensor.Shape, tensor.Shape) int64 { return 0 }

// WorkspaceBytes implements graph.Op.
func (Flatten) WorkspaceBytes([]tensor.Shape, tensor.Shape) int64 { return 0 }

// Linear is a fully-connected layer: out = x·Wᵀ + b with x of shape
// [N, D] and W of shape [K, D] (PyTorch convention). Graph inputs:
// x, weight, bias.
type Linear struct{}

// Kind implements graph.Op.
func (Linear) Kind() string { return "linear" }

// OutShape implements graph.Op.
func (Linear) OutShape(in []tensor.Shape) (tensor.Shape, error) {
	if len(in) != 3 {
		return nil, fmt.Errorf("linear: want x, weight, bias")
	}
	x, w, b := in[0], in[1], in[2]
	if len(x) != 2 || len(w) != 2 || len(b) != 1 {
		return nil, fmt.Errorf("linear: ranks x=%v w=%v b=%v", x, w, b)
	}
	if x[1] != w[1] || b[0] != w[0] {
		return nil, fmt.Errorf("linear: shapes x=%v w=%v b=%v incompatible", x, w, b)
	}
	return tensor.Shape{x[0], w[0]}, nil
}

// Forward implements graph.Op.
func (Linear) Forward(in []*tensor.Tensor) (*tensor.Tensor, any) {
	x, w, b := in[0], in[1], in[2]
	n, k := x.Shape()[0], w.Shape()[0]
	out := tensor.New(n, k)
	tensor.MatMulBT(out, x, w)
	for r := 0; r < n; r++ {
		row := out.Data()[r*k : (r+1)*k]
		for i := range row {
			row[i] += b.Data()[i]
		}
	}
	return out, nil
}

// ForwardArena implements graph.ArenaForwardOp.
func (Linear) ForwardArena(a *tensor.Arena, in []*tensor.Tensor) (*tensor.Tensor, any) {
	x, w, b := in[0], in[1], in[2]
	n, k := x.Shape()[0], w.Shape()[0]
	out := a.GetRaw(n, k)
	tensor.MatMulBT(out, x, w)
	for r := 0; r < n; r++ {
		row := out.Data()[r*k : (r+1)*k]
		for i := range row {
			row[i] += b.Data()[i]
		}
	}
	return out, nil
}

// Backward implements graph.Op.
func (Linear) Backward(gradOut *tensor.Tensor, in []*tensor.Tensor, _ *tensor.Tensor, _ any) []*tensor.Tensor {
	x, w := in[0], in[1]
	n, k := gradOut.Shape()[0], gradOut.Shape()[1]
	d := x.Shape()[1]
	gx := tensor.New(n, d)
	tensor.MatMul(gx, gradOut, w) // [N,K]@[K,D]
	gw := tensor.New(k, d)
	tensor.MatMulAT(gw, gradOut, x) // gradOutᵀ@x
	gb := tensor.New(k)
	for r := 0; r < n; r++ {
		row := gradOut.Data()[r*k : (r+1)*k]
		for i, v := range row {
			gb.Data()[i] += v
		}
	}
	return []*tensor.Tensor{gx, gw, gb}
}

// BackwardArena implements graph.ArenaBackwardOp.
func (Linear) BackwardArena(a *tensor.Arena, gradOut *tensor.Tensor, in []*tensor.Tensor, _ []tensor.Shape, _ *tensor.Tensor, _ any, gin []*tensor.Tensor) {
	x, w := in[0], in[1]
	n, k := gradOut.Shape()[0], gradOut.Shape()[1]
	d := x.Shape()[1]
	gx := a.GetRaw(n, d)
	tensor.MatMul(gx, gradOut, w) // [N,K]@[K,D]
	gw := a.GetRaw(k, d)
	tensor.MatMulAT(gw, gradOut, x) // gradOutᵀ@x
	gb := a.Get(k)                  // zeroed: row-sum accumulator
	for r := 0; r < n; r++ {
		row := gradOut.Data()[r*k : (r+1)*k]
		for i, v := range row {
			gb.Data()[i] += v
		}
	}
	gin[0], gin[1], gin[2] = gx, gw, gb
}

// NeedsInput implements graph.Op: x and W are read in backward, b not.
func (Linear) NeedsInput(i int) bool { return i <= 1 }

// NeedsOutput implements graph.Op.
func (Linear) NeedsOutput() bool { return false }

// FLOPs implements graph.Op.
func (Linear) FLOPs(in []tensor.Shape, out tensor.Shape) int64 {
	return 2 * int64(in[0][0]) * int64(in[0][1]) * int64(out[1])
}

// WorkspaceBytes implements graph.Op.
func (Linear) WorkspaceBytes([]tensor.Shape, tensor.Shape) int64 { return 0 }
