package nn

import (
	"math"
	"math/rand"
	"strings"

	"splitcnn/internal/graph"
)

// KaimingInit initializes parameters by naming convention, matching the
// defaults of the paper's training recipes:
//
//   - "*.w"     → Kaiming-normal with gain √2 (fan-in from the weight shape)
//   - "*.b"     → zero
//   - "*.gamma" → one  (BN scale; marked NoDecay)
//   - "*.beta"  → zero (BN shift; marked NoDecay)
//
// It is used as a graph.Initializer via ParamStore.InitFromGraph.
func KaimingInit(rng *rand.Rand, p *graph.Param) {
	switch {
	case strings.HasSuffix(p.Name, ".w"):
		s := p.Value.Shape()
		fanIn := 1
		for _, d := range s[1:] {
			fanIn *= d
		}
		std := math.Sqrt(2 / float64(fanIn))
		p.Value.RandNormal(rng, std)
	case strings.HasSuffix(p.Name, ".gamma"):
		p.Value.Fill(1)
		p.NoDecay = true
	case strings.HasSuffix(p.Name, ".beta"):
		p.NoDecay = true
	case strings.HasSuffix(p.Name, ".b"):
		p.NoDecay = true
	}
}
