package nn_test

import (
	"math/rand"
	"testing"

	"splitcnn/internal/graph"
	"splitcnn/internal/nn"
	"splitcnn/internal/tensor"
)

// gradCheck numerically validates d sum(output) / d param for every
// parameter of the graph (probing a handful of coordinates each) and,
// when inputName is non-empty, for that input as well.
func gradCheck(t *testing.T, g *graph.Graph, store *graph.ParamStore, feeds graph.Feeds, probes int, tol float64) {
	t.Helper()
	ex, err := graph.NewExecutor(g, store)
	if err != nil {
		t.Fatalf("executor: %v", err)
	}
	store.ZeroGrads()
	if _, err := ex.Forward(feeds); err != nil {
		t.Fatalf("forward: %v", err)
	}
	if err := ex.Backward(); err != nil {
		t.Fatalf("backward: %v", err)
	}
	lossAt := func() float64 {
		ex2, err := graph.NewExecutor(g, store)
		if err != nil {
			t.Fatalf("executor: %v", err)
		}
		outs, err := ex2.Forward(feeds)
		if err != nil {
			t.Fatalf("forward: %v", err)
		}
		var s float64
		for _, o := range outs {
			s += o.Sum()
		}
		return s
	}
	rng := rand.New(rand.NewSource(99))
	const eps = 1e-2
	for _, p := range store.All() {
		for probe := 0; probe < probes; probe++ {
			idx := rng.Intn(p.Value.Elems())
			orig := p.Value.Data()[idx]
			p.Value.Data()[idx] = orig + eps
			up := lossAt()
			p.Value.Data()[idx] = orig - eps
			down := lossAt()
			p.Value.Data()[idx] = orig
			num := (up - down) / (2 * eps)
			got := float64(p.Grad.Data()[idx])
			if d := num - got; d > tol || d < -tol {
				t.Errorf("param %s[%d]: analytic %v vs numeric %v", p.Name, idx, got, num)
			}
		}
	}
}

func TestConvGradThroughGraph(t *testing.T) {
	g := graph.New()
	x := g.Input("x", tensor.Shape{2, 2, 6, 6})
	w := g.Param("c1.w", tensor.Shape{3, 2, 3, 3})
	b := g.Param("c1.b", tensor.Shape{3})
	out := g.Add("c1", nn.NewConv(3, 1, 1), x, w, b)
	g.SetOutput(out)

	rng := rand.New(rand.NewSource(1))
	store := graph.NewParamStore()
	store.InitFromGraph(g, rng, nn.KaimingInit)
	xt := tensor.New(2, 2, 6, 6)
	xt.RandNormal(rng, 1)
	gradCheck(t, g, store, graph.Feeds{"x": xt}, 10, 0.05)
}

func TestBatchNormGradThroughGraph(t *testing.T) {
	for _, recompute := range []bool{false, true} {
		g := graph.New()
		x := g.Input("x", tensor.Shape{3, 2, 4, 4})
		gamma := g.Param("bn.gamma", tensor.Shape{2})
		beta := g.Param("bn.beta", tensor.Shape{2})
		bn := nn.NewBatchNorm(nn.NewBNState("bn", 2))
		bn.Recompute = recompute
		out := g.Add("bn", bn, x, gamma, beta)
		g.SetOutput(out)

		rng := rand.New(rand.NewSource(2))
		store := graph.NewParamStore()
		store.InitFromGraph(g, rng, nn.KaimingInit)
		// Perturb gamma/beta away from the (1, 0) init so the check is
		// non-trivial.
		store.Lookup("bn.gamma").Value.RandUniform(rng, 0.5, 1.5)
		store.Lookup("bn.beta").Value.RandUniform(rng, -0.5, 0.5)
		xt := tensor.New(3, 2, 4, 4)
		xt.RandNormal(rng, 1)
		gradCheck(t, g, store, graph.Feeds{"x": xt}, 4, 0.05)
	}
}

// TestBatchNormRecomputeMatchesStandard verifies the In-Place ABN
// variant produces the same input gradient as the standard formulation.
func TestBatchNormRecomputeMatchesStandard(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := tensor.New(2, 3, 5, 5)
	x.RandNormal(rng, 1)
	gamma := tensor.New(3)
	gamma.RandUniform(rng, 0.5, 2)
	beta := tensor.New(3)
	beta.RandNormal(rng, 0.3)
	gradOut := tensor.New(2, 3, 5, 5)
	gradOut.RandNormal(rng, 1)

	run := func(recompute bool) []*tensor.Tensor {
		bn := nn.NewBatchNorm(nn.NewBNState("bn", 3))
		bn.Recompute = recompute
		in := []*tensor.Tensor{x, gamma, beta}
		out, stash := bn.Forward(in)
		if recompute {
			return bn.Backward(gradOut, []*tensor.Tensor{nil, gamma, beta}, out, stash)
		}
		return bn.Backward(gradOut, in, nil, stash)
	}
	std := run(false)
	rec := run(true)
	for i := range std {
		if d := tensor.MaxAbsDiff(std[i], rec[i]); d > 1e-3 {
			t.Fatalf("grad %d differs by %v between standard and recompute BN", i, d)
		}
	}
}

func TestLinearGradThroughGraph(t *testing.T) {
	g := graph.New()
	x := g.Input("x", tensor.Shape{4, 6})
	w := g.Param("fc.w", tensor.Shape{3, 6})
	b := g.Param("fc.b", tensor.Shape{3})
	out := g.Add("fc", nn.Linear{}, x, w, b)
	g.SetOutput(out)

	rng := rand.New(rand.NewSource(4))
	store := graph.NewParamStore()
	store.InitFromGraph(g, rng, nn.KaimingInit)
	xt := tensor.New(4, 6)
	xt.RandNormal(rng, 1)
	gradCheck(t, g, store, graph.Feeds{"x": xt}, 10, 0.02)
}

func TestSoftmaxXentGradient(t *testing.T) {
	// Direct op-level numeric check of d loss / d logits.
	rng := rand.New(rand.NewSource(5))
	logits := tensor.New(4, 5)
	logits.RandNormal(rng, 1)
	labels := tensor.FromSlice([]float32{0, 3, 2, 4}, 4)
	op := nn.SoftmaxCrossEntropy{}

	loss := func() float64 {
		out, _ := op.Forward([]*tensor.Tensor{logits, labels})
		return float64(out.Data()[0])
	}
	_, stash := op.Forward([]*tensor.Tensor{logits, labels})
	seed := tensor.New(1)
	seed.Fill(1)
	grads := op.Backward(seed, []*tensor.Tensor{nil, labels}, nil, stash)
	gl := grads[0]
	if grads[1] != nil {
		t.Fatal("labels must not receive a gradient")
	}
	const eps = 1e-2
	for probe := 0; probe < 10; probe++ {
		idx := rng.Intn(logits.Elems())
		orig := logits.Data()[idx]
		logits.Data()[idx] = orig + eps
		up := loss()
		logits.Data()[idx] = orig - eps
		down := loss()
		logits.Data()[idx] = orig
		num := (up - down) / (2 * eps)
		if d := num - float64(gl.Data()[idx]); d > 1e-3 || d < -1e-3 {
			t.Fatalf("logits grad[%d]: analytic %v vs numeric %v", idx, gl.Data()[idx], num)
		}
	}
}

func TestReLUThroughGraphReleasesInput(t *testing.T) {
	// relu -> relu chain: first relu's output is needed (stashed by
	// itself); the intermediate is the second relu's output.
	g := graph.New()
	x := g.Input("x", tensor.Shape{1, 8})
	r1 := g.Add("r1", nn.ReLU{}, x)
	r2 := g.Add("r2", nn.ReLU{}, r1)
	g.SetOutput(r2)
	store := graph.NewParamStore()
	ex, err := graph.NewExecutor(g, store)
	if err != nil {
		t.Fatal(err)
	}
	xt := tensor.FromSlice([]float32{-2, -1, 0, 1, 2, 3, -4, 5}, 1, 8)
	outs, err := ex.Forward(graph.Feeds{"x": xt})
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{0, 0, 0, 1, 2, 3, 0, 5}
	for i, w := range want {
		if outs[0].Data()[i] != w {
			t.Fatalf("relu chain output[%d] = %v, want %v", i, outs[0].Data()[i], w)
		}
	}
	if err := ex.Backward(); err != nil {
		t.Fatal(err)
	}
}

func TestAddSharedErrorAliases(t *testing.T) {
	op := &nn.Add{N: 3}
	a := tensor.FromSlice([]float32{1, 2}, 2)
	b := tensor.FromSlice([]float32{3, 4}, 2)
	c := tensor.FromSlice([]float32{5, 6}, 2)
	out, _ := op.Forward([]*tensor.Tensor{a, b, c})
	if out.Data()[0] != 9 || out.Data()[1] != 12 {
		t.Fatalf("add output %v", out.Data())
	}
	g := tensor.FromSlice([]float32{7, 8}, 2)
	grads := op.Backward(g, nil, nil, nil)
	if len(grads) != 3 {
		t.Fatalf("want 3 grads, got %d", len(grads))
	}
	for _, gr := range grads {
		if gr != g {
			t.Fatal("summation error terms must share storage (§4.2)")
		}
	}
}

func TestExtractConcatRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := tensor.New(2, 3, 6, 8)
	x.RandNormal(rng, 1)
	// 2x2 patch grid with uneven boundaries.
	bounds := []struct{ h0, h1, w0, w1 int }{
		{0, 2, 0, 5}, {0, 2, 5, 8},
		{2, 6, 0, 5}, {2, 6, 5, 8},
	}
	patches := make([]*tensor.Tensor, 4)
	for i, b := range bounds {
		op := &nn.ExtractPatch{H0: b.h0, H1: b.h1, W0: b.w0, W1: b.w1}
		patches[i], _ = op.Forward([]*tensor.Tensor{x})
	}
	cat := &nn.ConcatPatches{NH: 2, NW: 2}
	out, stash := cat.Forward(patches)
	if d := tensor.MaxAbsDiff(out, x); d != 0 {
		t.Fatalf("extract+concat is not the identity: diff %v", d)
	}
	// Backward of concat must give back exactly the patch gradients.
	grads := cat.Backward(x, nil, nil, stash)
	for i := range grads {
		if d := tensor.MaxAbsDiff(grads[i], patches[i]); d != 0 {
			t.Fatalf("concat backward patch %d diff %v", i, d)
		}
	}
	// Backward of extract scatters into the right window.
	op := &nn.ExtractPatch{H0: 2, H1: 6, W0: 5, W1: 8}
	p, st := op.Forward([]*tensor.Tensor{x})
	gi := op.Backward(p, nil, nil, st)[0]
	if gi.At(0, 0, 0, 0) != 0 {
		t.Fatal("extract backward leaked outside window")
	}
	if gi.At(0, 0, 2, 5) != x.At(0, 0, 2, 5) {
		t.Fatal("extract backward missed window")
	}
}

func TestDropoutMask(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	op := &nn.Dropout{P: 0.5, Training: true, Rng: rng}
	x := tensor.New(1, 1000)
	x.Fill(1)
	out, stash := op.Forward([]*tensor.Tensor{x})
	kept := 0
	for _, v := range out.Data() {
		if v != 0 {
			if v != 2 {
				t.Fatalf("survivor not scaled by 1/(1-p): %v", v)
			}
			kept++
		}
	}
	if kept < 400 || kept > 600 {
		t.Fatalf("kept %d of 1000 at p=0.5", kept)
	}
	g := tensor.New(1, 1000)
	g.Fill(1)
	gi := op.Backward(g, nil, nil, stash)[0]
	for i, v := range gi.Data() {
		wantZero := out.Data()[i] == 0
		if wantZero && v != 0 || !wantZero && v != 2 {
			t.Fatalf("grad mask mismatch at %d: %v", i, v)
		}
	}
	// Eval mode: identity.
	op.Training = false
	out2, _ := op.Forward([]*tensor.Tensor{x})
	if d := tensor.MaxAbsDiff(out2, x); d != 0 {
		t.Fatalf("eval-mode dropout not identity: %v", d)
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	op := nn.Flatten{}
	x := tensor.New(2, 3, 4, 5)
	out, stash := op.Forward([]*tensor.Tensor{x})
	if !out.Shape().Equal(tensor.Shape{2, 60}) {
		t.Fatalf("flatten shape %v", out.Shape())
	}
	g := tensor.New(2, 60)
	gi := op.Backward(g, nil, nil, stash)[0]
	if !gi.Shape().Equal(x.Shape()) {
		t.Fatalf("flatten backward shape %v", gi.Shape())
	}
}

func TestGlobalAvgPool(t *testing.T) {
	x := tensor.FromSlice([]float32{1, 2, 3, 4, 10, 20, 30, 40}, 1, 2, 2, 2)
	op := nn.GlobalAvgPool{}
	out, stash := op.Forward([]*tensor.Tensor{x})
	if out.At(0, 0, 0, 0) != 2.5 || out.At(0, 1, 0, 0) != 25 {
		t.Fatalf("gap output %v", out.Data())
	}
	g := tensor.FromSlice([]float32{4, 8}, 1, 2, 1, 1)
	gi := op.Backward(g, nil, nil, stash)[0]
	if gi.At(0, 0, 1, 1) != 1 || gi.At(0, 1, 0, 0) != 2 {
		t.Fatalf("gap backward %v", gi.Data())
	}
}

// TestEndToEndTinyTraining drives a conv->relu->pool->flatten->linear->
// xent graph through several SGD steps by hand and requires the loss to
// drop — an integration test of the whole substrate.
func TestEndToEndTinyTraining(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := graph.New()
	x := g.Input("x", tensor.Shape{8, 1, 8, 8})
	labels := g.Input("labels", tensor.Shape{8})
	w1 := g.Param("c1.w", tensor.Shape{4, 1, 3, 3})
	b1 := g.Param("c1.b", tensor.Shape{4})
	c1 := g.Add("c1", nn.NewConv(3, 1, 1), x, w1, b1)
	r1 := g.Add("r1", nn.ReLU{}, c1)
	p1 := g.Add("p1", nn.NewMaxPool(2, 2), r1)
	f := g.Add("flat", nn.Flatten{}, p1)
	wf := g.Param("fc.w", tensor.Shape{2, 64})
	bf := g.Param("fc.b", tensor.Shape{2})
	fc := g.Add("fc", nn.Linear{}, f, wf, bf)
	loss := g.Add("loss", nn.SoftmaxCrossEntropy{}, fc, labels)
	g.SetOutput(loss)

	store := graph.NewParamStore()
	store.InitFromGraph(g, rng, nn.KaimingInit)

	// Two linearly separable blob classes in pixel space.
	xt := tensor.New(8, 1, 8, 8)
	lt := tensor.New(8)
	for i := 0; i < 8; i++ {
		cls := i % 2
		lt.Data()[i] = float32(cls)
		for j := 0; j < 64; j++ {
			v := rng.NormFloat64()*0.3 + float64(cls)
			xt.Data()[i*64+j] = float32(v)
		}
	}
	feeds := graph.Feeds{"x": xt, "labels": lt}

	ex, err := graph.NewExecutor(g, store)
	if err != nil {
		t.Fatal(err)
	}
	var first, last float64
	for step := 0; step < 30; step++ {
		store.ZeroGrads()
		outs, err := ex.Forward(feeds)
		if err != nil {
			t.Fatal(err)
		}
		l := float64(outs[0].Data()[0])
		if step == 0 {
			first = l
		}
		last = l
		if err := ex.Backward(); err != nil {
			t.Fatal(err)
		}
		for _, p := range store.All() {
			tensor.AXPY(p.Value, -0.1, p.Grad)
		}
	}
	if last > first*0.5 {
		t.Fatalf("loss did not drop: first %v last %v", first, last)
	}
}
