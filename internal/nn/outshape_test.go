package nn_test

import (
	"testing"

	"splitcnn/internal/graph"
	"splitcnn/internal/nn"
	"splitcnn/internal/tensor"
)

// TestOutShapeValidation exercises the error paths of every op's shape
// inference — the guard rails the graph builder and the modelfile parser
// rely on.
func TestOutShapeValidation(t *testing.T) {
	s := func(dims ...int) tensor.Shape { return tensor.Shape(dims) }
	conv := nn.NewConv(3, 1, 1)
	bn := nn.NewBatchNorm(nn.NewBNState("bn", 4))
	bnr := nn.NewBNReLU(nn.NewBNState("bnr", 4))
	cases := []struct {
		name string
		op   graph.Op
		in   []tensor.Shape
	}{
		{"conv wrong arity", conv, []tensor.Shape{s(1, 3, 8, 8)}},
		{"conv rank", conv, []tensor.Shape{s(3, 8, 8), s(4, 3, 3, 3), s(4)}},
		{"conv channel mismatch", conv, []tensor.Shape{s(1, 5, 8, 8), s(4, 3, 3, 3), s(4)}},
		{"conv kernel mismatch", conv, []tensor.Shape{s(1, 3, 8, 8), s(4, 3, 5, 5), s(4)}},
		{"conv bias mismatch", conv, []tensor.Shape{s(1, 3, 8, 8), s(4, 3, 3, 3), s(5)}},
		{"conv degenerate output", nn.NewConv(9, 1, 0), []tensor.Shape{s(1, 3, 4, 4), s(4, 3, 9, 9), s(4)}},
		{"maxpool arity", nn.NewMaxPool(2, 2), []tensor.Shape{s(1, 3, 8, 8), s(1, 3, 8, 8)}},
		{"maxpool rank", nn.NewMaxPool(2, 2), []tensor.Shape{s(3, 8, 8)}},
		{"avgpool degenerate", nn.NewAvgPool(9, 9), []tensor.Shape{s(1, 3, 4, 4)}},
		{"gap rank", nn.GlobalAvgPool{}, []tensor.Shape{s(3, 8)}},
		{"bn arity", bn, []tensor.Shape{s(1, 4, 8, 8)}},
		{"bn gamma mismatch", bn, []tensor.Shape{s(1, 4, 8, 8), s(5), s(4)}},
		{"bn rank", bn, []tensor.Shape{s(4, 8), s(4), s(4)}},
		{"bnrelu gamma mismatch", bnr, []tensor.Shape{s(1, 4, 8, 8), s(5), s(4)}},
		{"relu arity", nn.ReLU{}, []tensor.Shape{s(1, 4), s(1, 4)}},
		{"dropout arity", &nn.Dropout{}, []tensor.Shape{}},
		{"flatten rank", nn.Flatten{}, []tensor.Shape{s(8)}},
		{"linear arity", nn.Linear{}, []tensor.Shape{s(2, 8), s(4, 8)}},
		{"linear dims", nn.Linear{}, []tensor.Shape{s(2, 8), s(4, 9), s(4)}},
		{"linear bias", nn.Linear{}, []tensor.Shape{s(2, 8), s(4, 8), s(5)}},
		{"xent arity", nn.SoftmaxCrossEntropy{}, []tensor.Shape{s(2, 8)}},
		{"xent batch mismatch", nn.SoftmaxCrossEntropy{}, []tensor.Shape{s(2, 8), s(3)}},
		{"add count", &nn.Add{N: 2}, []tensor.Shape{s(1, 4)}},
		{"add shape mismatch", &nn.Add{N: 2}, []tensor.Shape{s(1, 4), s(1, 5)}},
		{"extract window", &nn.ExtractPatch{H0: 3, H1: 2, W0: 0, W1: 2}, []tensor.Shape{s(1, 1, 4, 4)}},
		{"extract out of range", &nn.ExtractPatch{H0: 0, H1: 9, W0: 0, W1: 2}, []tensor.Shape{s(1, 1, 4, 4)}},
		{"concat count", &nn.ConcatPatches{NH: 2, NW: 2}, []tensor.Shape{s(1, 1, 2, 2)}},
		{"concat row mismatch", &nn.ConcatPatches{NH: 1, NW: 2}, []tensor.Shape{s(1, 1, 2, 2), s(1, 1, 3, 2)}},
		{"concat channel mismatch", &nn.ConcatPatches{NH: 1, NW: 2}, []tensor.Shape{s(1, 1, 2, 2), s(1, 2, 2, 2)}},
	}
	for _, c := range cases {
		if _, err := c.op.OutShape(c.in); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

// TestOutShapeHappyPaths pins the inferred shapes for each op.
func TestOutShapeHappyPaths(t *testing.T) {
	s := func(dims ...int) tensor.Shape { return tensor.Shape(dims) }
	check := func(name string, op graph.Op, in []tensor.Shape, want tensor.Shape) {
		t.Helper()
		got, err := op.OutShape(in)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !got.Equal(want) {
			t.Fatalf("%s: %v, want %v", name, got, want)
		}
	}
	check("conv", nn.NewConv(3, 2, 1), []tensor.Shape{s(2, 3, 9, 9), s(8, 3, 3, 3), s(8)}, s(2, 8, 5, 5))
	check("maxpool", nn.NewMaxPool(2, 2), []tensor.Shape{s(1, 4, 8, 8)}, s(1, 4, 4, 4))
	check("gap", nn.GlobalAvgPool{}, []tensor.Shape{s(2, 7, 5, 5)}, s(2, 7, 1, 1))
	check("flatten", nn.Flatten{}, []tensor.Shape{s(2, 3, 4, 5)}, s(2, 60))
	check("linear", nn.Linear{}, []tensor.Shape{s(2, 60), s(10, 60), s(10)}, s(2, 10))
	check("xent", nn.SoftmaxCrossEntropy{}, []tensor.Shape{s(4, 10), s(4)}, s(1))
	check("extract", &nn.ExtractPatch{H0: 1, H1: 3, W0: 2, W1: 6}, []tensor.Shape{s(1, 2, 8, 8)}, s(1, 2, 2, 4))
	check("concat", &nn.ConcatPatches{NH: 2, NW: 1}, []tensor.Shape{s(1, 2, 3, 4), s(1, 2, 5, 4)}, s(1, 2, 8, 4))
}
