package nn_test

import (
	"math"
	"math/rand"
	"testing"

	"splitcnn/internal/autotune"
	"splitcnn/internal/core"
	"splitcnn/internal/graph"
	"splitcnn/internal/nn"
	"splitcnn/internal/tensor"
)

// splitConvNet builds a small conv net and returns its 2x2 split-graph
// variant, whose per-patch convolutions run on ExtractPatch shapes
// with asymmetric padding — the geometries the satellite test sweep
// must cover.
func splitConvNet(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New()
	x := g.Input("image", tensor.Shape{2, 3, 16, 16})
	labels := g.Input("labels", tensor.Shape{2})
	w1 := g.Param("c1.w", tensor.Shape{8, 3, 3, 3})
	b1 := g.Param("c1.b", tensor.Shape{8})
	c1 := g.Add("c1", nn.NewConv(3, 1, 1), x, w1, b1)
	r1 := g.Add("r1", nn.ReLU{}, c1)
	w2 := g.Param("c2.w", tensor.Shape{4, 8, 5, 5})
	b2 := g.Param("c2.b", tensor.Shape{4})
	c2 := g.Add("c2", nn.NewConv(5, 1, 2), r1, w2, b2)
	r2 := g.Add("r2", nn.ReLU{}, c2)
	f := g.Add("flat", nn.Flatten{}, r2)
	wf := g.Param("fc.w", tensor.Shape{2, 4 * 16 * 16})
	bf := g.Param("fc.b", tensor.Shape{2})
	fc := g.Add("fc", nn.Linear{}, f, wf, bf)
	loss := g.Add("loss", nn.SoftmaxCrossEntropy{}, fc, labels)
	g.SetOutput(loss)

	res, err := core.Split(g, core.Config{Depth: 1, NH: 2, NW: 2})
	if err != nil {
		t.Fatal(err)
	}
	return res.Graph
}

func relErrData(got, want []float32) float64 {
	var maxAbs, maxDiff float64
	for i := range want {
		if a := math.Abs(float64(want[i])); a > maxAbs {
			maxAbs = a
		}
		if d := math.Abs(float64(got[i] - want[i])); d > maxDiff {
			maxDiff = d
		}
	}
	if maxAbs == 0 {
		return maxDiff
	}
	return maxDiff / maxAbs
}

// TestTunedDispatchOnSplitGraphShapes is the satellite property test:
// for every convolution site of a split graph (per-patch shapes with
// asymmetric halo padding) and every algorithm the tuner may install,
// dispatching through nn.Conv.Forward matches tensor.Conv2D —
// bit-identically for the im2col plan, within fp32 noise for
// Winograd/direct, and within the pinned FFTConvTolerance for FFT.
func TestTunedDispatchOnSplitGraphShapes(t *testing.T) {
	defer autotune.Default.Reset()
	sg := splitConvNet(t)
	sites := autotune.Sites(sg)
	if len(sites) < 2 {
		t.Fatalf("split graph exposes %d conv sites, want several patch geometries", len(sites))
	}
	rng := rand.New(rand.NewSource(11))
	for _, s := range sites {
		x := tensor.New(s.In...)
		w := tensor.New(s.Cout, s.In.C(), s.Params.KH, s.Params.KW)
		b := tensor.New(s.Cout)
		x.RandNormal(rng, 1)
		w.RandNormal(rng, 0.5)
		b.RandNormal(rng, 0.1)
		want := tensor.Conv2D(x, w, b, s.Params)
		op := &nn.Conv{Params: s.Params, HasBias: true}
		for a := autotune.Algo(0); a < 4; a++ {
			if !autotune.Applicable(a, s.Params, s.In, s.Cout) {
				continue
			}
			autotune.Default.SetPlan(s.Key(), autotune.Decision{Algo: a})
			got, _ := op.Forward([]*tensor.Tensor{x, w, b})
			tol := 1e-5
			switch a {
			case autotune.Im2col:
				tol = 0 // the very same kernel: bit identity
			case autotune.FFT:
				tol = tensor.FFTConvTolerance
			}
			if e := relErrData(got.Data(), want.Data()); e > tol {
				t.Fatalf("site %s algo %v: error %v > %v (in %v k%dx%d pad%+v)",
					s.Name, a, e, tol, s.In, s.Params.KH, s.Params.KW, s.Params.Pad)
			}
		}
	}
}

// TestTunedSplitGraphEndToEnd tunes a whole split graph for real
// (tiny trial budget) and checks the executed forward stays within the
// FFT tolerance of the untuned reference — whatever mix of backends
// the measurements picked.
func TestTunedSplitGraphEndToEnd(t *testing.T) {
	defer autotune.Default.Reset()
	sg := splitConvNet(t)
	store := graph.NewParamStore()
	rng := rand.New(rand.NewSource(5))
	store.InitFromGraph(sg, rng, nn.KaimingInit)

	feeds := graph.Feeds{
		"image":  tensor.New(2, 3, 16, 16),
		"labels": tensor.Wrap([]float32{0, 1}, 2),
	}
	feeds["image"].RandNormal(rng, 1)

	exec, err := graph.NewExecutor(sg, store)
	if err != nil {
		t.Fatal(err)
	}
	want, err := exec.Forward(feeds)
	if err != nil {
		t.Fatal(err)
	}
	wantLoss := append([]float32(nil), want[0].Data()...)

	autotune.Default.Trials = 1
	defer func() { autotune.Default.Trials = 0 }()
	results := autotune.Default.TuneGraph(sg)
	if len(results) != len(autotune.Sites(sg)) {
		t.Fatalf("tuned %d sites, want %d", len(results), len(autotune.Sites(sg)))
	}
	exec2, err := graph.NewExecutor(sg, store)
	if err != nil {
		t.Fatal(err)
	}
	got, err := exec2.Forward(feeds)
	if err != nil {
		t.Fatal(err)
	}
	if e := relErrData(got[0].Data(), wantLoss); e > tensor.FFTConvTolerance {
		t.Fatalf("tuned end-to-end forward drifted by %v", e)
	}
}
