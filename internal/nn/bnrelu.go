package nn

import (
	"fmt"
	"math"

	"splitcnn/internal/tensor"
)

// BNReLU is the fused, memory-efficient In-Place Activated BatchNorm of
// Bulò et al. that §6.3 adopts to raise ResNet's offloadable fraction:
// y = LeakyReLU(γ·x̂ + β). Because the leaky activation is invertible,
// the backward pass reconstructs x̂ from the stashed *output* alone —
// the layer's input feature map never needs to be kept (or offloaded),
// halving the conv→BN→activation block's stash footprint.
type BNReLU struct {
	State *BNState
	Eps   float64
	// Slope is the negative-side slope of the leaky activation; it must
	// be positive so the activation is invertible.
	Slope    float64
	Training bool
	// cache holds the precast inference statistics for the compiled
	// execution path (see compiled.go).
	cache bnEvalCache
}

// NewBNReLU returns a train-mode fused BN+LeakyReLU bound to state.
func NewBNReLU(state *BNState) *BNReLU {
	return &BNReLU{State: state, Eps: 1e-5, Slope: 0.01, Training: true}
}

// Kind implements graph.Op.
func (b *BNReLU) Kind() string { return "bnrelu" }

// SetTraining implements graph.ModalOp: inference mode normalizes with
// the running statistics and never updates them.
func (b *BNReLU) SetTraining(training bool) { b.Training = training }

// PatchwiseSafe reports that the op may be applied per spatial patch.
func (b *BNReLU) PatchwiseSafe() bool { return true }

// InPlaceEligible marks the op as computable in place.
func (b *BNReLU) InPlaceEligible() bool { return true }

// OutShape implements graph.Op.
func (b *BNReLU) OutShape(in []tensor.Shape) (tensor.Shape, error) {
	if len(in) != 3 {
		return nil, fmt.Errorf("bnrelu: want x, gamma, beta")
	}
	if len(in[0]) != 4 {
		return nil, fmt.Errorf("bnrelu: want NCHW input, got %v", in[0])
	}
	c := in[0].C()
	if len(in[1]) != 1 || in[1][0] != c || len(in[2]) != 1 || in[2][0] != c {
		return nil, fmt.Errorf("bnrelu: gamma %v / beta %v incompatible with %v", in[1], in[2], in[0])
	}
	return in[0].Clone(), nil
}

// Forward implements graph.Op.
func (b *BNReLU) Forward(in []*tensor.Tensor) (*tensor.Tensor, any) {
	x, gamma, beta := in[0], in[1], in[2]
	s := x.Shape()
	n, c, plane := s.N(), s.C(), s.H()*s.W()
	cnt := float64(n * plane)
	mean := make([]float64, c)
	variance := make([]float64, c)
	invStd := make([]float64, c)
	if b.Training {
		for ch := 0; ch < c; ch++ {
			var sum, sq float64
			for bi := 0; bi < n; bi++ {
				base := (bi*c + ch) * plane
				for _, v := range x.Data()[base : base+plane] {
					f := float64(v)
					sum += f
					sq += f * f
				}
			}
			m := sum / cnt
			v := max(sq/cnt-m*m, 0)
			mean[ch] = m
			variance[ch] = v
			invStd[ch] = 1 / math.Sqrt(v+b.Eps)
		}
		b.State.Update(mean, variance)
	} else {
		for ch := 0; ch < c; ch++ {
			mean[ch] = b.State.RunningMean[ch]
			invStd[ch] = 1 / math.Sqrt(b.State.RunningVar[ch]+b.Eps)
		}
	}
	out := tensor.New(s...)
	slope := float32(b.Slope)
	for bi := 0; bi < n; bi++ {
		for ch := 0; ch < c; ch++ {
			base := (bi*c + ch) * plane
			g, bt := gamma.Data()[ch], beta.Data()[ch]
			m, is := float32(mean[ch]), float32(invStd[ch])
			src := x.Data()[base : base+plane]
			dst := out.Data()[base : base+plane]
			for i, v := range src {
				z := (v-m)*is*g + bt
				if z < 0 {
					z *= slope
				}
				dst[i] = z
			}
		}
	}
	return out, &bnStash{mean: mean, invStd: invStd}
}

// Backward implements graph.Op: everything is reconstructed from the
// stashed output (x̂ = (inv-leaky(y) − β)/γ), so in[0] is nil.
func (b *BNReLU) Backward(gradOut *tensor.Tensor, in []*tensor.Tensor, out *tensor.Tensor, stash any) []*tensor.Tensor {
	st := stash.(*bnStash)
	gamma := in[1]
	s := gradOut.Shape()
	n, c, plane := s.N(), s.C(), s.H()*s.W()
	cnt := float64(n * plane)
	slope := float32(b.Slope)

	// Reconstruct x̂ and the gradient flowing into the BN affine output.
	xhat := tensor.New(s...)
	gz := tensor.New(s...)
	for bi := 0; bi < n; bi++ {
		for ch := 0; ch < c; ch++ {
			base := (bi*c + ch) * plane
			g := gamma.Data()[ch]
			if g == 0 {
				g = 1e-12
			}
			bt := in[2].Data()[ch]
			ysrc := out.Data()[base : base+plane]
			gsrc := gradOut.Data()[base : base+plane]
			xd := xhat.Data()[base : base+plane]
			gzd := gz.Data()[base : base+plane]
			for i, y := range ysrc {
				z := y
				gv := gsrc[i]
				if y < 0 {
					z = y / slope
					gv *= slope
				}
				xd[i] = (z - bt) / g
				gzd[i] = gv
			}
		}
	}

	gGamma := tensor.New(c)
	gBeta := tensor.New(c)
	sumG := make([]float64, c)
	sumGX := make([]float64, c)
	for bi := 0; bi < n; bi++ {
		for ch := 0; ch < c; ch++ {
			base := (bi*c + ch) * plane
			gsrc := gz.Data()[base : base+plane]
			xsrc := xhat.Data()[base : base+plane]
			var sg, sgx float64
			for i, g := range gsrc {
				sg += float64(g)
				sgx += float64(g) * float64(xsrc[i])
			}
			sumG[ch] += sg
			sumGX[ch] += sgx
		}
	}
	for ch := 0; ch < c; ch++ {
		gGamma.Data()[ch] = float32(sumGX[ch])
		gBeta.Data()[ch] = float32(sumG[ch])
	}

	gradX := tensor.New(s...)
	for bi := 0; bi < n; bi++ {
		for ch := 0; ch < c; ch++ {
			base := (bi*c + ch) * plane
			g := float64(gamma.Data()[ch])
			is := st.invStd[ch]
			gsrc := gz.Data()[base : base+plane]
			xsrc := xhat.Data()[base : base+plane]
			dst := gradX.Data()[base : base+plane]
			if b.Training {
				mG, mGX := sumG[ch]/cnt, sumGX[ch]/cnt
				for i, gv := range gsrc {
					dst[i] = float32(g * is * (float64(gv) - mG - float64(xsrc[i])*mGX))
				}
			} else {
				for i, gv := range gsrc {
					dst[i] = float32(g * is * float64(gv))
				}
			}
		}
	}
	return []*tensor.Tensor{gradX, gGamma, gBeta}
}

// NeedsInput implements graph.Op: only gamma and beta are re-read.
func (b *BNReLU) NeedsInput(i int) bool { return i > 0 }

// NeedsOutput implements graph.Op.
func (b *BNReLU) NeedsOutput() bool { return true }

// FLOPs implements graph.Op.
func (b *BNReLU) FLOPs(in []tensor.Shape, _ tensor.Shape) int64 {
	return 12 * int64(in[0].Elems())
}

// WorkspaceBytes implements graph.Op.
func (b *BNReLU) WorkspaceBytes([]tensor.Shape, tensor.Shape) int64 { return 0 }
