package nn_test

import (
	"math/rand"
	"testing"

	"splitcnn/internal/graph"
	"splitcnn/internal/nn"
	"splitcnn/internal/tensor"
)

func TestBNReLUForwardMatchesUnfused(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.New(2, 3, 5, 5)
	x.RandNormal(rng, 1)
	gamma := tensor.New(3)
	gamma.RandUniform(rng, 0.5, 2)
	beta := tensor.New(3)
	beta.RandNormal(rng, 0.3)
	in := []*tensor.Tensor{x, gamma, beta}

	fused := nn.NewBNReLU(nn.NewBNState("a", 3))
	fusedOut, _ := fused.Forward(in)

	bn := nn.NewBatchNorm(nn.NewBNState("b", 3))
	bnOut, _ := bn.Forward(in)
	// Leaky ReLU with the same slope.
	want := bnOut.Clone()
	for i, v := range want.Data() {
		if v < 0 {
			want.Data()[i] = v * 0.01
		}
	}
	if d := tensor.MaxAbsDiff(fusedOut, want); d > 1e-5 {
		t.Fatalf("fused forward differs from BN+LeakyReLU by %v", d)
	}
}

func TestBNReLUGradient(t *testing.T) {
	g := graph.New()
	x := g.Input("x", tensor.Shape{3, 2, 4, 4})
	gamma := g.Param("bn.gamma", tensor.Shape{2})
	beta := g.Param("bn.beta", tensor.Shape{2})
	op := nn.NewBNReLU(nn.NewBNState("bn", 2))
	out := g.Add("bn", op, x, gamma, beta)
	g.SetOutput(out)

	rng := rand.New(rand.NewSource(2))
	store := graph.NewParamStore()
	store.InitFromGraph(g, rng, nn.KaimingInit)
	store.Lookup("bn.gamma").Value.RandUniform(rng, 0.5, 1.5)
	store.Lookup("bn.beta").Value.RandUniform(rng, -0.5, 0.5)
	xt := tensor.New(3, 2, 4, 4)
	xt.RandNormal(rng, 1)
	// Central differences straddle the leaky kink for elements with
	// |z| < eps, so the tolerance is looser than for smooth ops.
	gradCheck(t, g, store, graph.Feeds{"x": xt}, 4, 0.25)
}

// TestBNReLUStashMetadata locks in the memory property that motivates
// the op: the input feature map is not needed in backward.
func TestBNReLUStashMetadata(t *testing.T) {
	op := nn.NewBNReLU(nn.NewBNState("bn", 4))
	if op.NeedsInput(0) {
		t.Fatal("BNReLU must not stash its input")
	}
	if !op.NeedsInput(1) || !op.NeedsInput(2) {
		t.Fatal("BNReLU needs gamma/beta")
	}
	if !op.NeedsOutput() {
		t.Fatal("BNReLU reconstructs from its output")
	}
}
