package nn_test

import (
	"math"
	"math/rand"
	"testing"

	"splitcnn/internal/core"
	"splitcnn/internal/graph"
	"splitcnn/internal/nn"
	"splitcnn/internal/tensor"
)

// This file is a finite-difference harness for whole graphs: it checks
// the directional derivative of loss = sum(outputs) — the quantity
// Backward computes when it seeds output gradients with ones — against
// a central difference along one random direction through *all*
// parameters at once. A directional probe touches every coordinate
// (unlike per-coordinate spot checks, which sample a handful), and
// accumulating the dot products and losses in float64 keeps the
// comparison meaningful even though the kernels run in float32.

// direction returns a fixed random unit vector over all parameter
// coordinates of store, keyed by parameter name.
func direction(store *graph.ParamStore, seed int64) map[string][]float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make(map[string][]float64)
	var norm float64
	for _, p := range store.All() {
		d := make([]float64, p.Value.Elems())
		for i := range d {
			d[i] = rng.NormFloat64()
			norm += d[i] * d[i]
		}
		v[p.Name] = d
	}
	norm = math.Sqrt(norm)
	for _, d := range v {
		for i := range d {
			d[i] /= norm
		}
	}
	return v
}

// lossAt runs a fresh forward pass and returns sum(outputs) in float64.
func lossAt(t *testing.T, g *graph.Graph, store *graph.ParamStore, feeds graph.Feeds) float64 {
	t.Helper()
	ex, err := graph.NewExecutor(g, store)
	if err != nil {
		t.Fatalf("executor: %v", err)
	}
	outs, err := ex.Forward(feeds)
	if err != nil {
		t.Fatalf("forward: %v", err)
	}
	var s float64
	for _, o := range outs {
		s += o.Sum()
	}
	return s
}

// directionalGradCheck compares the analytic directional derivative
// ⟨∇θ L, v⟩ with the central difference (L(θ+εv) − L(θ−εv)) / 2ε and
// fails when the relative error exceeds tol.
func directionalGradCheck(t *testing.T, g *graph.Graph, store *graph.ParamStore, feeds graph.Feeds, seed int64, tol float64) {
	t.Helper()
	ex, err := graph.NewExecutor(g, store)
	if err != nil {
		t.Fatalf("executor: %v", err)
	}
	store.ZeroGrads()
	if _, err := ex.Forward(feeds); err != nil {
		t.Fatalf("forward: %v", err)
	}
	if err := ex.Backward(); err != nil {
		t.Fatalf("backward: %v", err)
	}

	v := direction(store, seed)
	var analytic float64
	for _, p := range store.All() {
		d := v[p.Name]
		for i, gr := range p.Grad.Data() {
			analytic += float64(gr) * d[i]
		}
	}

	// ε is a trade-off: large enough that the float32 loss difference
	// rises above rounding noise, small enough that curvature (and
	// ReLU/maxpool kink crossings) stay negligible.
	const eps = 1e-2
	perturb := func(scale float64) {
		for _, p := range store.All() {
			d := v[p.Name]
			data := p.Value.Data()
			for i := range data {
				data[i] = float32(float64(data[i]) + scale*d[i])
			}
		}
	}
	saved := make(map[string][]float32)
	for _, p := range store.All() {
		saved[p.Name] = append([]float32(nil), p.Value.Data()...)
	}
	restore := func() {
		for _, p := range store.All() {
			copy(p.Value.Data(), saved[p.Name])
		}
	}

	perturb(+eps)
	up := lossAt(t, g, store, feeds)
	restore()
	perturb(-eps)
	down := lossAt(t, g, store, feeds)
	restore()

	fd := (up - down) / (2 * eps)
	rel := math.Abs(fd-analytic) / math.Max(1, math.Max(math.Abs(fd), math.Abs(analytic)))
	if rel > tol {
		t.Errorf("directional derivative: analytic %.8g vs finite-difference %.8g (rel %.2e > %.0e)",
			analytic, fd, rel, tol)
	}
}

// gradCase builds one small graph ending in a linear head, so split and
// unsplit variants share the same parameters and loss surface.
type gradCase struct {
	name  string
	build func(g *graph.Graph) // input "x" [2,3,8,8] → output
}

func gradCases() []gradCase {
	conv := func(g *graph.Graph, x *graph.Node) *graph.Node {
		w := g.Param("c1.w", tensor.Shape{4, 3, 3, 3})
		b := g.Param("c1.b", tensor.Shape{4})
		return g.Add("c1", nn.NewConv(3, 1, 1), x, w, b)
	}
	head := func(g *graph.Graph, in *graph.Node, d int) {
		f := g.Add("flatten", nn.Flatten{}, in)
		w := g.Param("fc.w", tensor.Shape{5, d})
		b := g.Param("fc.b", tensor.Shape{5})
		g.SetOutput(g.Add("fc", nn.Linear{}, f, w, b))
	}
	return []gradCase{
		{"conv-linear", func(g *graph.Graph) {
			head(g, conv(g, g.Input("x", tensor.Shape{2, 3, 8, 8})), 4*8*8)
		}},
		{"conv-relu-maxpool-linear", func(g *graph.Graph) {
			c := conv(g, g.Input("x", tensor.Shape{2, 3, 8, 8}))
			r := g.Add("c1.relu", nn.ReLU{}, c)
			p := g.Add("pool1", nn.NewMaxPool(2, 2), r)
			head(g, p, 4*4*4)
		}},
		{"conv-bn-linear", func(g *graph.Graph) {
			c := conv(g, g.Input("x", tensor.Shape{2, 3, 8, 8}))
			gamma := g.Param("bn1.gamma", tensor.Shape{4})
			beta := g.Param("bn1.beta", tensor.Shape{4})
			bn := g.Add("bn1", nn.NewBatchNorm(nn.NewBNState("bn1", 4)), c, gamma, beta)
			head(g, bn, 4*8*8)
		}},
	}
}

func buildCase(t *testing.T, c gradCase, split bool) (*graph.Graph, *graph.ParamStore, graph.Feeds) {
	t.Helper()
	g := graph.New()
	c.build(g)
	store := graph.NewParamStore()
	rng := rand.New(rand.NewSource(11))
	store.InitFromGraph(g, rng, nn.KaimingInit)
	// Perturb BN affine params away from the degenerate (1, 0) init.
	if p := store.Lookup("bn1.gamma"); p != nil {
		p.Value.RandUniform(rng, 0.5, 1.5)
	}
	if p := store.Lookup("bn1.beta"); p != nil {
		p.Value.RandNormal(rng, 0.3)
	}
	if split {
		sr, err := core.Split(g, core.Config{Depth: 1, NH: 2, NW: 2})
		if err != nil {
			t.Fatalf("split: %v", err)
		}
		if sr.SplitConvs == 0 {
			t.Fatal("split transformed no convolutions")
		}
		g = sr.Graph
	}
	x := tensor.New(2, 3, 8, 8)
	x.RandNormal(rng, 1)
	return g, store, graph.Feeds{"x": x}
}

// TestDirectionalGradCheck validates end-to-end autodiff on small
// conv/pool/BN/linear graphs against central differences, both on the
// original graphs and on their Split-CNN rewrites (2x2 patches, full
// depth) — the transform must preserve gradients, not just values.
func TestDirectionalGradCheck(t *testing.T) {
	for _, c := range gradCases() {
		for _, split := range []bool{false, true} {
			name := c.name
			if split {
				name += "-split"
			}
			t.Run(name, func(t *testing.T) {
				g, store, feeds := buildCase(t, c, split)
				directionalGradCheck(t, g, store, feeds, 42, 1e-3)
			})
		}
	}
}

// Note there is no "split gradients equal unsplit gradients" test on
// purpose: halo-less patches are padded independently at internal
// boundaries (§3), so the split graph computes a deliberately different
// function with different gradients. The property that must hold — and
// that the split cases above check — is that the split graph's autodiff
// is exact for the function it actually computes.
