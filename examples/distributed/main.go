// Distributed projects the speedup of Split-CNN-based distributed
// training (§6.4 / Figure 11): larger per-node batches mean fewer
// gradient exchanges per epoch, which matters exactly when the network
// is the bottleneck. The projection feeds the paper's analytical T_epoch
// model with step times measured on the device simulator.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"strings"

	"splitcnn/internal/core"
	"splitcnn/internal/costmodel"
	"splitcnn/internal/dist"
	"splitcnn/internal/graph"
	"splitcnn/internal/models"
	"splitcnn/internal/sim"
)

func main() {
	dev := costmodel.P100()

	// Baseline: VGG-19 at the single-GPU batch size of 64.
	base := models.VGG19ImageNet(64)
	bres, bprog, _, err := sim.PlanAndRun(base.Graph, dev, sim.MethodNone, -1)
	if err != nil {
		log.Fatal(err)
	}
	baseStep := dist.StepTimes{BatchSize: 64, Forward: bprog.ForwardTime(), Backward: bprog.BackwardTime()}
	_ = bres

	// Split-CNN + HMMS at a 6x larger batch.
	big := models.VGG19ImageNet(384)
	sr, err := core.Split(big.Graph, core.Config{Depth: 0.75, NH: 2, NW: 2})
	if err != nil {
		log.Fatal(err)
	}
	sres, sprog, _, err := sim.PlanAndRun(sr.Graph, dev, sim.MethodHMMS, -1)
	if err != nil {
		log.Fatal(err)
	}
	splitStep := dist.StepTimes{
		BatchSize: 384,
		Forward:   sprog.ForwardTime() + sres.ForwardStall,
		Backward:  sprog.BackwardTime() + sres.BackwardStall,
	}

	store := graph.NewParamStore()
	store.InitFromGraph(base.Graph, nil, nil)
	m := dist.Model{DatasetSize: 1_281_167, GradientBytes: store.Bytes(), Alpha: 0.8}

	fmt.Printf("VGG-19 distributed-training projection (|G| = %.0f MB, α = 0.8)\n", float64(store.Bytes())/1e6)
	fmt.Printf("baseline: batch %d, step %.0f ms;  split+hmms: batch %d, step %.0f ms\n\n",
		baseStep.BatchSize, (baseStep.Forward+baseStep.Backward)*1e3,
		splitStep.BatchSize, (splitStep.Forward+splitStep.Backward)*1e3)
	fmt.Printf("%-16s %-9s %s\n", "bandwidth", "speedup", "")
	for _, gbit := range []float64{0.5, 1, 2, 4, 8, 10, 16, 32} {
		s, err := m.Speedup(baseStep, splitStep, dist.GbitToBytes(gbit))
		if err != nil {
			log.Fatal(err)
		}
		bar := strings.Repeat("#", int(s*8))
		fmt.Printf("%8.1f Gbit/s  %6.2fx  %s\n", gbit, s, bar)
	}
	fmt.Println("\nAt the paper's 10 Gbit/s cloud-network operating point the")
	fmt.Println("projection lands near the reported 2.1x lower-bound speedup.")
}
