// Stochastic trains a scaled-down VGG-19 on the synthetic CIFAR-like
// dataset three ways — unmodified baseline, deterministic Split-CNN, and
// Stochastic Split-CNN (§3.3, ω = 0.2) — and evaluates the stochastic
// variant on the *unsplit* network, demonstrating the paper's deployment
// story: random per-minibatch boundaries keep the weights usable without
// any split-aware inference infrastructure.
//
//	go run ./examples/stochastic
package main

import (
	"fmt"
	"log"

	"splitcnn/internal/core"
	"splitcnn/internal/data"
	"splitcnn/internal/models"
	"splitcnn/internal/train"
)

func main() {
	cfg := data.CIFARLike(1024, 512)
	cfg.Noise = 0.9
	cfg.MaxShift = 6
	ds, err := data.Synthetic(cfg)
	if err != nil {
		log.Fatal(err)
	}

	runOne := func(name string, split core.Config, evalUnsplit bool) {
		fmt.Printf("--- %s ---\n", name)
		res, err := train.Run(train.Config{
			Arch:          "vgg19",
			Model:         models.Config{WidthDiv: 16, BatchNorm: true},
			BatchSize:     32,
			Epochs:        6,
			LR:            0.05,
			Momentum:      0.9,
			WeightDecay:   1e-4,
			LRDecayEpochs: []int{4},
			Split:         split,
			EvalUnsplit:   evalUnsplit,
			Seed:          7,
			Progress: func(epoch int, loss, errRate float64) {
				fmt.Printf("  epoch %d: train loss %.3f, test error %.3f\n", epoch, loss, errRate)
			},
		}, ds)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  final test error: %.3f\n\n", res.FinalTestErr)
	}

	runOne("baseline (unsplit)", core.Config{}, false)
	runOne("split-cnn (depth 50%, 4 patches)", core.Config{Depth: 0.5, NH: 2, NW: 2}, false)
	runOne("stochastic split-cnn (ω=0.2, evaluated unsplit)",
		core.Config{Depth: 0.5, NH: 2, NW: 2, Stochastic: true, Omega: 0.2}, true)
}
