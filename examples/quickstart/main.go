// Quickstart: build a small CNN, transform it into a Split-CNN, and
// verify the split network runs forward and backward with the same
// parameters as the original.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"splitcnn/internal/core"
	"splitcnn/internal/graph"
	"splitcnn/internal/nn"
	"splitcnn/internal/tensor"
)

func main() {
	// 1. Describe a small CNN as a computation graph: two 3x3
	//    convolutions around a 2x2 max pool, then a linear classifier.
	g := graph.New()
	image := g.Input("image", tensor.Shape{8, 3, 32, 32})
	labels := g.Input("labels", tensor.Shape{8})

	w1 := g.Param("conv1.w", tensor.Shape{16, 3, 3, 3})
	b1 := g.Param("conv1.b", tensor.Shape{16})
	c1 := g.Add("conv1", nn.NewConv(3, 1, 1), image, w1, b1)
	r1 := g.Add("relu1", nn.ReLU{}, c1)
	p1 := g.Add("pool1", nn.NewMaxPool(2, 2), r1)

	w2 := g.Param("conv2.w", tensor.Shape{32, 16, 3, 3})
	b2 := g.Param("conv2.b", tensor.Shape{32})
	c2 := g.Add("conv2", nn.NewConv(3, 1, 1), p1, w2, b2)
	r2 := g.Add("relu2", nn.ReLU{}, c2)

	flat := g.Add("flatten", nn.Flatten{}, r2)
	wf := g.Param("fc.w", tensor.Shape{10, 32 * 16 * 16})
	bf := g.Param("fc.b", tensor.Shape{10})
	logits := g.Add("fc", nn.Linear{}, flat, wf, bf)
	loss := g.Add("loss", nn.SoftmaxCrossEntropy{}, logits, labels)
	g.SetOutput(loss)

	// 2. Initialize parameters once; both the original and the split
	//    graph resolve them by name from this store.
	rng := rand.New(rand.NewSource(1))
	store := graph.NewParamStore()
	store.InitFromGraph(g, rng, nn.KaimingInit)

	// 3. Transform: split both convolutions (depth 1.0) into a 2x2 grid
	//    of spatial patches. The pool between them is k = s, so the
	//    patches flow through the whole region independently and are
	//    joined exactly once.
	res, err := core.Split(g, core.Config{Depth: 1.0, NH: 2, NW: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("split %d/%d convolutions; %d -> %d graph nodes; joins at %v\n",
		res.SplitConvs, res.TotalConvs, len(g.Nodes), len(res.Graph.Nodes), res.JoinNames)

	// 4. Run one forward+backward step on both graphs with shared
	//    weights and identical input.
	x := tensor.New(8, 3, 32, 32)
	x.RandNormal(rng, 1)
	y := tensor.New(8)
	for i := range y.Data() {
		y.Data()[i] = float32(i % 10)
	}
	feeds := graph.Feeds{"image": x, "labels": y}

	for _, v := range []struct {
		name string
		g    *graph.Graph
	}{{"original", g}, {"split-cnn", res.Graph}} {
		ex, err := graph.NewExecutor(v.g, store)
		if err != nil {
			log.Fatal(err)
		}
		store.ZeroGrads()
		outs, err := ex.Forward(feeds)
		if err != nil {
			log.Fatal(err)
		}
		if err := ex.Backward(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s loss = %.4f, peak live activations = %.1f MB\n",
			v.name, outs[0].Data()[0], float64(ex.PeakLiveBytes)/1e6)
	}
	fmt.Println("\nThe losses differ slightly at patch boundaries — that is the")
	fmt.Println("semantic change Split-CNN trades for memory scalability (§3).")
}
