// Memoryplan walks the full HMMS pipeline (§4) on VGG-19: serialize the
// graph, assign tensor storage objects, plan offload/prefetch with
// Algorithm 1, statically lay out the three memory pools, and replay the
// plan on the simulated P100 + NVLink device — comparing the baseline,
// the vDNN-style layer-wise scheduler, and HMMS.
//
//	go run ./examples/memoryplan
package main

import (
	"fmt"
	"log"

	"splitcnn/internal/core"
	"splitcnn/internal/costmodel"
	"splitcnn/internal/hmms"
	"splitcnn/internal/models"
	"splitcnn/internal/sim"
)

func main() {
	const batch = 64
	dev := costmodel.P100()
	m := models.VGG19ImageNet(batch)

	// Step 1-2: serialize the computation graph (forward + generated
	// backward) with cost-model times.
	prog, err := hmms.BuildProgram(m.Graph, dev)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("VGG-19, batch %d: %d forward + %d backward ops\n",
		batch, prog.NumForward, len(prog.Ops)-prog.NumForward)
	fmt.Printf("stashed intermediate results: %.2f GB; theoretical offload limit: %.0f%%\n\n",
		float64(prog.StashedBytes())/1e9, prog.TheoreticalOffloadLimit()*100)

	// Step 3: storage assignment with the §4.2 optimizations.
	assign := hmms.AssignStorage(prog, hmms.DefaultStorageOpts())
	fmt.Printf("storage assignment: %d tensors -> %d TSOs (in-place ReLU fired %dx)\n\n",
		len(prog.Tensors), len(assign.TSOs), assign.InPlaceReLUCount)

	// Step 4: offload/prefetch planning (Algorithm 1).
	plan, err := hmms.PlanOffload(prog, assign, prog.TheoreticalOffloadLimit())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offload plan: %d TSOs, %.2f GB (%.0f%% of candidates)\n",
		len(plan.Entries), float64(plan.OffloadedBytes)/1e9, plan.Fraction()*100)
	e := plan.Entries[0]
	fmt.Printf("  e.g. TSO %d (%d MB): offload at op %d, sync after op %d, prefetch at op %d, needed before op %d\n\n",
		e.TSO, e.Bytes>>20, e.OffloadAtOp, e.SyncAtOp, e.PrefetchAtOp, e.SyncBeforeOp)

	// Step 5: static first-fit memory planning, three pools.
	mem := hmms.PlanMemory(prog, assign, plan, hmms.FirstFit)
	fmt.Printf("static memory plan (first-fit):\n")
	fmt.Printf("  device general pool: %7.2f GB (no-reuse would need %.2f GB)\n",
		float64(mem.PoolBytes[hmms.PoolDeviceGeneral])/1e9, float64(mem.NoReuseBytes)/1e9)
	fmt.Printf("  device param pool:   %7.2f GB\n", float64(mem.PoolBytes[hmms.PoolDeviceParam])/1e9)
	fmt.Printf("  host pinned pool:    %7.2f GB\n\n", float64(mem.PoolBytes[hmms.PoolHost])/1e9)

	// Replay each scheduling method on the device simulator (Figure 8).
	fmt.Printf("%-11s %10s %10s %12s\n", "method", "img/s", "degr", "device mem")
	for _, method := range []sim.Method{sim.MethodNone, sim.MethodLayerWise, sim.MethodHMMS} {
		res, _, pm, err := sim.PlanAndRun(m.Graph, dev, method, -1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-11s %10.1f %9.1f%% %9.2f GB\n",
			method, res.Throughput(batch), res.Degradation()*100, float64(pm.DeviceBytes())/1e9)
	}

	// And the combination with Split-CNN (the Figure 10 mechanism).
	sr, err := core.Split(m.Graph, core.Config{Depth: 0.75, NH: 2, NW: 2})
	if err != nil {
		log.Fatal(err)
	}
	res, _, pm, err := sim.PlanAndRun(sr.Graph, dev, sim.MethodHMMS, -1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-11s %10.1f %9.1f%% %9.2f GB   <- split(4 patches, depth 75%%) + HMMS\n",
		"split+hmms", res.Throughput(batch), res.Degradation()*100, float64(pm.DeviceBytes())/1e9)
}
