// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus ablations of the design choices called out in
// DESIGN.md. Run them all with
//
//	go test -bench=. -benchtime=1x
//
// Training-based figures (fig4-7, table1) run at "quick" scale by
// default; set SPLITCNN_SCALE=standard or =full for the higher-fidelity
// (slower) versions recorded in EXPERIMENTS.md.
package splitcnn_test

import (
	"io"
	"math/rand"
	"os"
	"testing"

	"splitcnn/internal/autotune"
	"splitcnn/internal/core"
	"splitcnn/internal/costmodel"
	"splitcnn/internal/experiments"
	"splitcnn/internal/graph"
	"splitcnn/internal/hmms"
	"splitcnn/internal/models"
	"splitcnn/internal/nn"
	"splitcnn/internal/sim"
	"splitcnn/internal/tensor"
	"splitcnn/internal/trace"
	"splitcnn/internal/train"
)

func benchOpts(b *testing.B) experiments.Options {
	b.Helper()
	scale, err := experiments.ParseScale(os.Getenv("SPLITCNN_SCALE"))
	if err != nil {
		scale = experiments.Quick
	}
	if os.Getenv("SPLITCNN_SCALE") == "" {
		scale = experiments.Quick
	}
	out := io.Writer(io.Discard)
	if testing.Verbose() {
		out = os.Stdout
	}
	return experiments.Options{Scale: scale, Device: costmodel.P100(), Out: out}
}

// --- Paper figures and tables ---

// BenchmarkFig1Profile regenerates Figure 1 (generated vs offload-able
// data per layer for VGG-19 and ResNet-18).
func BenchmarkFig1Profile(b *testing.B) {
	opt := benchOpts(b)
	for i := 0; i < b.N; i++ {
		series, err := experiments.Fig1(opt)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(series[0].Limit*100, "vgg-offloadable-%")
		b.ReportMetric(series[1].Limit*100, "resnet18-offloadable-%")
	}
}

// BenchmarkFig4SplitDepth regenerates Figure 4 (test error vs splitting
// depth). Real CPU training — prefer -benchtime=1x.
func BenchmarkFig4SplitDepth(b *testing.B) {
	opt := benchOpts(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig4(opt)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].TestErr*100, "vgg-baseline-err-%")
		b.ReportMetric(rows[4].TestErr*100, "vgg-depth50-err-%")
	}
}

// BenchmarkFig5NumSplits regenerates Figure 5 (test error vs number of
// splits at depth 25%).
func BenchmarkFig5NumSplits(b *testing.B) {
	opt := benchOpts(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig5(opt)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].TestErr*100, "vgg-1split-err-%")
		b.ReportMetric(rows[5].TestErr*100, "vgg-9split-err-%")
	}
}

// BenchmarkFig6Stochastic regenerates Figure 6 (stochastic splitting vs
// baseline, evaluated on the unsplit network).
func BenchmarkFig6Stochastic(b *testing.B) {
	opt := benchOpts(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig6(opt)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].TestErr*100, "vgg-baseline-err-%")
		b.ReportMetric(rows[2].TestErr*100, "vgg-sscnn-err-%")
	}
}

// BenchmarkTable1Accuracy regenerates Table 1 / Figure 7 (baseline vs
// SCNN vs SSCNN across four architectures).
func BenchmarkTable1Accuracy(b *testing.B) {
	opt := benchOpts(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(opt)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(rows)), "rows")
	}
}

// BenchmarkFig8Throughput regenerates Figure 8 (training throughput of
// the three scheduling methods).
func BenchmarkFig8Throughput(b *testing.B) {
	opt := benchOpts(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig8(opt)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Network == "vgg19" && r.Method == sim.MethodHMMS {
				b.ReportMetric(r.Degradation*100, "vgg-hmms-degr-%")
			}
			if r.Network == "vgg19" && r.Method == sim.MethodLayerWise {
				b.ReportMetric(r.Degradation*100, "vgg-layerwise-degr-%")
			}
		}
	}
}

// BenchmarkFig9Timelines regenerates Figure 9 (stream timelines).
func BenchmarkFig9Timelines(b *testing.B) {
	opt := benchOpts(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig9(opt)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[1].Stall*1e3, "layerwise-stall-ms")
		b.ReportMetric(rows[2].Stall*1e3, "hmms-stall-ms")
	}
}

// BenchmarkFig10MaxBatch regenerates Figure 10 (maximum batch size with
// Split-CNN + HMMS vs baseline).
func BenchmarkFig10MaxBatch(b *testing.B) {
	opt := benchOpts(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig10(opt)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].BatchRatio, "vgg-batch-ratio")
		b.ReportMetric(rows[1].BatchRatio, "resnet18-batch-ratio")
	}
}

// BenchmarkFig11Distributed regenerates Figure 11 (distributed-training
// speedup vs bandwidth).
func BenchmarkFig11Distributed(b *testing.B) {
	opt := benchOpts(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig11(opt)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range res.Points {
			if p.BandwidthGbit == 10 {
				b.ReportMetric(p.Speedup, "speedup-at-10gbit")
			}
		}
	}
}

// --- Ablations (DESIGN.md) ---

// BenchmarkAblationAllocator compares the first-fit static planner
// against no-reuse allocation on VGG-19's device general pool.
func BenchmarkAblationAllocator(b *testing.B) {
	m := models.VGG19ImageNet(16)
	prog, err := hmms.BuildProgram(m.Graph, costmodel.P100())
	if err != nil {
		b.Fatal(err)
	}
	assign := hmms.AssignStorage(prog, hmms.DefaultStorageOpts())
	for i := 0; i < b.N; i++ {
		ff := hmms.PlanMemory(prog, assign, hmms.PlanNone(), hmms.FirstFit)
		nr := hmms.PlanMemory(prog, assign, hmms.PlanNone(), hmms.NoReuse)
		b.ReportMetric(float64(ff.PoolBytes[hmms.PoolDeviceGeneral])/1e9, "firstfit-GB")
		b.ReportMetric(float64(nr.PoolBytes[hmms.PoolDeviceGeneral])/1e9, "noreuse-GB")
	}
}

// BenchmarkAblationStorageOpt measures the §4.2 storage optimizations
// (in-place ReLU + summation error sharing) on ResNet-18.
func BenchmarkAblationStorageOpt(b *testing.B) {
	m := models.ResNet18ImageNet(16)
	prog, err := hmms.BuildProgram(m.Graph, costmodel.P100())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		with := hmms.AssignStorage(prog, hmms.DefaultStorageOpts())
		without := hmms.AssignStorage(prog, hmms.StorageOpts{})
		mw := hmms.PlanMemory(prog, with, hmms.PlanNone(), hmms.FirstFit)
		mo := hmms.PlanMemory(prog, without, hmms.PlanNone(), hmms.FirstFit)
		b.ReportMetric(float64(mw.PoolBytes[hmms.PoolDeviceGeneral])/1e9, "optimized-GB")
		b.ReportMetric(float64(mo.PoolBytes[hmms.PoolDeviceGeneral])/1e9, "unoptimized-GB")
	}
}

// BenchmarkAblationSplitOverhead quantifies what splitting costs and
// buys at the same batch size: simulated step-time overhead of the patch
// bookkeeping vs. the reduction in planned device memory (§6.3's
// workspace-reuse and bottleneck-breaking effects).
func BenchmarkAblationSplitOverhead(b *testing.B) {
	m := models.VGG19ImageNet(64)
	base, _, baseMem, err := sim.PlanAndRun(m.Graph, costmodel.P100(), sim.MethodHMMS, -1)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		sr, err := core.Split(m.Graph, core.Config{Depth: 0.75, NH: 2, NW: 2})
		if err != nil {
			b.Fatal(err)
		}
		res, _, mem, err := sim.PlanAndRun(sr.Graph, costmodel.P100(), sim.MethodHMMS, -1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric((res.TotalTime/base.TotalTime-1)*100, "step-overhead-%")
		b.ReportMetric(float64(baseMem.DeviceBytes()-mem.DeviceBytes())/1e9, "memory-saved-GB")
	}
}

// BenchmarkAblationPolicy compares the lb/midpoint/ub boundary policies'
// forward-output divergence from the unsplit network on a 3x3 conv.
func BenchmarkAblationPolicy(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := graph.New()
	x := g.Input("image", tensor.Shape{4, 8, 32, 32})
	w := g.Param("c.w", tensor.Shape{8, 8, 3, 3})
	bb := g.Param("c.b", tensor.Shape{8})
	out := g.Add("c", nn.NewConv(3, 1, 1), x, w, bb)
	g.SetOutput(out)
	store := graph.NewParamStore()
	store.InitFromGraph(g, rng, nn.KaimingInit)
	xt := tensor.New(4, 8, 32, 32)
	xt.RandNormal(rng, 1)
	feeds := graph.Feeds{"image": xt}
	run := func(gr *graph.Graph) *tensor.Tensor {
		ex, err := graph.NewExecutor(gr, store)
		if err != nil {
			b.Fatal(err)
		}
		outs, err := ex.Forward(feeds)
		if err != nil {
			b.Fatal(err)
		}
		return outs[0]
	}
	ref := run(g)
	for i := 0; i < b.N; i++ {
		for _, p := range []core.BoundaryPolicy{core.PolicyLower, core.PolicyMidpoint, core.PolicyUpper} {
			sr, err := core.Split(g, core.Config{Depth: 1, NH: 2, NW: 2, Policy: p})
			if err != nil {
				b.Fatal(err)
			}
			got := run(sr.Graph)
			b.ReportMetric(tensor.MaxAbsDiff(got, ref), p.String()+"-maxdiff")
		}
	}
}

// --- Kernel micro-benchmarks ---

// BenchmarkConv2DForward measures the im2col convolution kernel.
func BenchmarkConv2DForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.New(8, 64, 32, 32)
	w := tensor.New(64, 64, 3, 3)
	bias := tensor.New(64)
	x.RandNormal(rng, 1)
	w.RandNormal(rng, 0.1)
	p := tensor.ConvParams{KH: 3, KW: 3, SH: 1, SW: 1, Pad: tensor.Symmetric(1)}
	flops := 2 * int64(8*64*32*32) * int64(64*9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.Conv2D(x, w, bias, p)
	}
	b.ReportMetric(float64(flops*int64(b.N))/b.Elapsed().Seconds()/1e9, "GFLOP/s")
}

// BenchmarkConv2DFFT measures the FFT convolution backend on an
// FFT-favorable geometry: a 5x5 kernel, where the spectral MAC's
// O(HW log HW) arithmetic amortizes best against im2col's 25x lowering.
func BenchmarkConv2DFFT(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.New(4, 32, 32, 32)
	w := tensor.New(32, 32, 5, 5)
	bias := tensor.New(32)
	x.RandNormal(rng, 1)
	w.RandNormal(rng, 0.1)
	p := tensor.ConvParams{KH: 5, KW: 5, SH: 1, SW: 1, Pad: tensor.Symmetric(2)}
	flops := 2 * int64(4*32*32*32) * int64(32*25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.Conv2DFFT(x, w, bias, p)
	}
	b.ReportMetric(float64(flops*int64(b.N))/b.Elapsed().Seconds()/1e9, "GFLOP/s")
}

// BenchmarkAutotunedConv dispatches the BenchmarkConv2DForward geometry
// through the autotuner's measured winner (tuned once, outside the
// timer) via the real nn.Conv forward path — the tuned-vs-untuned
// comparison the perf log records.
func BenchmarkAutotunedConv(b *testing.B) {
	defer autotune.Default.Reset()
	rng := rand.New(rand.NewSource(1))
	x := tensor.New(8, 64, 32, 32)
	w := tensor.New(64, 64, 3, 3)
	bias := tensor.New(64)
	x.RandNormal(rng, 1)
	w.RandNormal(rng, 0.1)
	p := tensor.ConvParams{KH: 3, KW: 3, SH: 1, SW: 1, Pad: tensor.Symmetric(1)}
	autotune.Default.Tune(p, x.Shape(), 64)
	op := &nn.Conv{Params: p, HasBias: true}
	in := []*tensor.Tensor{x, w, bias}
	a := tensor.NewArena()
	flops := 2 * int64(8*64*32*32) * int64(64*9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, _ := op.ForwardArena(a, in)
		a.Put(out)
	}
	b.ReportMetric(float64(flops*int64(b.N))/b.Elapsed().Seconds()/1e9, "GFLOP/s")
}

// BenchmarkMatMul measures the blocked packed SGEMM on a square
// problem large enough to stream through all cache levels.
func BenchmarkMatMul(b *testing.B) {
	const n = 512
	rng := rand.New(rand.NewSource(1))
	x := tensor.New(n, n)
	y := tensor.New(n, n)
	dst := tensor.New(n, n)
	x.RandNormal(rng, 1)
	y.RandNormal(rng, 1)
	flops := 2 * int64(n) * int64(n) * int64(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(dst, x, y)
	}
	b.ReportMetric(float64(flops*int64(b.N))/b.Elapsed().Seconds()/1e9, "GFLOP/s")
}

// BenchmarkIm2Col measures the stride-1 lowering fast path on the same
// geometry BenchmarkConv2DForward convolves; the metric is column-matrix
// bytes produced per second.
func BenchmarkIm2Col(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.New(8, 64, 32, 32)
	x.RandNormal(rng, 1)
	p := tensor.ConvParams{KH: 3, KW: 3, SH: 1, SW: 1, Pad: tensor.Symmetric(1)}
	a := tensor.NewArena()
	bytes := int64(64*9*8*32*32) * 4
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col := tensor.Im2ColArena(a, x, p)
		a.Put(col)
	}
	b.ReportMetric(float64(bytes*int64(b.N))/b.Elapsed().Seconds()/1e9, "GB/s")
}

// BenchmarkTrainStep measures one full arena-backed training step
// (forward, backward, SGD) of a small CNN. With b.ReportAllocs the
// allocs/op column doubles as a live view of the zero-allocation
// contract that internal/train's TestTrainStepZeroAlloc enforces.
func BenchmarkTrainStep(b *testing.B) {
	prev := tensor.SetParallelism(1)
	defer tensor.SetParallelism(prev)
	const batch = 8
	rng := rand.New(rand.NewSource(1))
	g := graph.New()
	x := g.Input("image", tensor.Shape{batch, 3, 32, 32})
	labels := g.Input("labels", tensor.Shape{batch})
	w1 := g.Param("c1.w", tensor.Shape{16, 3, 3, 3})
	b1 := g.Param("c1.b", tensor.Shape{16})
	c1 := g.Add("c1", nn.NewConv(3, 1, 1), x, w1, b1)
	r1 := g.Add("r1", nn.ReLU{}, c1)
	mp := g.Add("mp", nn.NewMaxPool(2, 2), r1)
	gap := g.Add("gap", nn.GlobalAvgPool{}, mp)
	fl := g.Add("fl", nn.Flatten{}, gap)
	wf := g.Param("fc.w", tensor.Shape{10, 16})
	bf := g.Param("fc.b", tensor.Shape{10})
	fc := g.Add("fc", nn.Linear{}, fl, wf, bf)
	loss := g.Add("loss", nn.SoftmaxCrossEntropy{}, fc, labels)
	g.SetOutput(loss)
	store := graph.NewParamStore()
	store.InitFromGraph(g, rng, nn.KaimingInit)
	ex, err := graph.NewExecutor(g, store)
	if err != nil {
		b.Fatal(err)
	}
	ex.UseArena(tensor.NewArena())
	opt := &train.SGD{LR: 0.01, Momentum: 0.9}
	xt := tensor.New(batch, 3, 32, 32)
	yt := tensor.New(batch)
	xt.RandNormal(rng, 1)
	for i := range yt.Data() {
		yt.Data()[i] = float32(i % 10)
	}
	feeds := graph.Feeds{"image": xt, "labels": yt}
	step := func() {
		store.ZeroGrads()
		if _, err := ex.Forward(feeds); err != nil {
			b.Fatal(err)
		}
		if err := ex.Backward(); err != nil {
			b.Fatal(err)
		}
		opt.Step(store)
	}
	for i := 0; i < 3; i++ {
		step() // warm the arena and free lists
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
}

// BenchmarkTrainStepSteplog is BenchmarkTrainStep with the step
// telemetry path turned on: the per-step Norms pass plus one JSONL
// record to a discarded sink — exactly what `splitcnn train -steplog`
// adds to each optimizer step. Compare against BenchmarkTrainStep to
// price the telemetry (<5% on warmed steps is the budget).
func BenchmarkTrainStepSteplog(b *testing.B) {
	prev := tensor.SetParallelism(1)
	defer tensor.SetParallelism(prev)
	const batch = 8
	rng := rand.New(rand.NewSource(1))
	g := graph.New()
	x := g.Input("image", tensor.Shape{batch, 3, 32, 32})
	labels := g.Input("labels", tensor.Shape{batch})
	w1 := g.Param("c1.w", tensor.Shape{16, 3, 3, 3})
	b1 := g.Param("c1.b", tensor.Shape{16})
	c1 := g.Add("c1", nn.NewConv(3, 1, 1), x, w1, b1)
	r1 := g.Add("r1", nn.ReLU{}, c1)
	mp := g.Add("mp", nn.NewMaxPool(2, 2), r1)
	gap := g.Add("gap", nn.GlobalAvgPool{}, mp)
	fl := g.Add("fl", nn.Flatten{}, gap)
	wf := g.Param("fc.w", tensor.Shape{10, 16})
	bf := g.Param("fc.b", tensor.Shape{10})
	fc := g.Add("fc", nn.Linear{}, fl, wf, bf)
	loss := g.Add("loss", nn.SoftmaxCrossEntropy{}, fc, labels)
	g.SetOutput(loss)
	store := graph.NewParamStore()
	store.InitFromGraph(g, rng, nn.KaimingInit)
	ex, err := graph.NewExecutor(g, store)
	if err != nil {
		b.Fatal(err)
	}
	ex.UseArena(tensor.NewArena())
	opt := &train.SGD{LR: 0.01, Momentum: 0.9}
	xt := tensor.New(batch, 3, 32, 32)
	yt := tensor.New(batch)
	xt.RandNormal(rng, 1)
	for i := range yt.Data() {
		yt.Data()[i] = float32(i % 10)
	}
	feeds := graph.Feeds{"image": xt, "labels": yt}
	log := trace.NewStepLog(io.Discard)
	stepNo := 0
	step := func() {
		store.ZeroGrads()
		outs, err := ex.Forward(feeds)
		if err != nil {
			b.Fatal(err)
		}
		if err := ex.Backward(); err != nil {
			b.Fatal(err)
		}
		opt.Step(store)
		stepNo++
		gradNorm, paramNorm := train.Norms(store)
		if err := log.Step(trace.StepRecord{
			Step: stepNo, Loss: float64(outs[0].Data()[0]),
			GradNorm: gradNorm, ParamNorm: paramNorm, LR: opt.LR,
		}); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		step() // warm the arena and free lists
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
}

// benchEvalModel builds the mini eval-mode VGG-19 used by the
// forward-path benchmarks: BN folds in place and every conv+ReLU pair
// fuses under the compiler, so the interpreted/compiled pair prices
// exactly what graph.Compile buys.
func benchEvalModel(b *testing.B) (*models.Model, *graph.ParamStore, graph.Feeds) {
	b.Helper()
	const batch = 8
	m, err := models.Build("vgg19", models.Config{
		BatchSize: batch, Classes: 10, InputC: 3, InputH: 32, InputW: 32,
		WidthDiv: 16, BatchNorm: true, Eval: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	m.Graph.SetOutput(m.Logits)
	rng := rand.New(rand.NewSource(1))
	store := graph.NewParamStore()
	store.InitFromGraph(m.Graph, rng, nn.KaimingInit)
	xt := tensor.New(batch, 3, 32, 32)
	xt.RandNormal(rng, 1)
	return m, store, graph.Feeds{"image": xt, "labels": tensor.New(batch)}
}

// BenchmarkInterpretedForward is the eval-mode forward pass through the
// interpreted arena executor — the baseline BenchmarkCompiledForward is
// read against.
func BenchmarkInterpretedForward(b *testing.B) {
	prev := tensor.SetParallelism(1)
	defer tensor.SetParallelism(prev)
	m, store, feeds := benchEvalModel(b)
	ex, err := graph.NewExecutor(m.Graph, store)
	if err != nil {
		b.Fatal(err)
	}
	ex.UseArena(tensor.NewArena())
	for i := 0; i < 3; i++ {
		if _, err := ex.Forward(feeds); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.Forward(feeds); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompiledForward is the same forward through graph.Compile's
// static program: fused conv+bias+ReLU passes, in-place BN epilogues,
// and a fixed-offset slab instead of per-op arena traffic. Warmed runs
// are zero-allocation (pinned by TestCompiledForwardZeroAlloc).
func BenchmarkCompiledForward(b *testing.B) {
	prev := tensor.SetParallelism(1)
	defer tensor.SetParallelism(prev)
	m, store, feeds := benchEvalModel(b)
	prog, err := graph.Compile(m.Graph, store, graph.CompileOptions{})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := prog.Forward(feeds); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prog.Forward(feeds); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSplitTransform measures the graph rewriter itself on the
// full-size ResNet-50 — the cost stochastic splitting pays per
// minibatch.
func BenchmarkSplitTransform(b *testing.B) {
	m := models.ResNet50ImageNet(32)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Split(m.Graph, core.Config{
			Depth: 0.812, NH: 2, NW: 2, Stochastic: true, Omega: 0.2, Rng: rng,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHMMSPipeline measures the offline planning cost (serialize,
// assign, plan, lay out) for ResNet-50 — the "no tuning required"
// overhead the paper contrasts with vDNN's trial-and-error.
func BenchmarkHMMSPipeline(b *testing.B) {
	m := models.ResNet50ImageNet(64)
	for i := 0; i < b.N; i++ {
		if _, _, _, err := sim.PlanAndRun(m.Graph, costmodel.P100(), sim.MethodHMMS, -1); err != nil {
			b.Fatal(err)
		}
	}
}
