package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"splitcnn/internal/graph"
	"splitcnn/internal/modelfile"
	"splitcnn/internal/models"
	"splitcnn/internal/nn"
	"splitcnn/internal/report"
	"splitcnn/internal/snapshot"
)

// cmdCompile lowers a model through graph.Compile and dumps the result:
// the rewrite statistics, the static memory plan, and optionally the
// HTML slab-timeline report. It self-verifies the headline identity —
// the plotted peak equals the slab size actually mapped — before
// printing anything, so `make compile-smoke` is a real check, not a
// formatter.
func cmdCompile(args []string) error {
	fs := flag.NewFlagSet("compile", flag.ExitOnError)
	model := fs.String("model", "", "model description file (overrides -arch)")
	arch := fs.String("arch", "vgg19", "built-in architecture")
	widthDiv := fs.Int("widthdiv", 16, "channel width divisor (with -arch)")
	classes := fs.Int("classes", 10, "classifier width (with -arch)")
	inC := fs.Int("inc", 3, "input channels (with -arch)")
	inH := fs.Int("inh", 32, "input height (with -arch)")
	inW := fs.Int("inw", 32, "input width (with -arch)")
	batch := fs.Int("batch", 8, "batch size")
	snap := fs.String("snapshot", "", "weight snapshot to restore before compiling")
	htmlOut := fs.String("o", "", "write the HTML slab-timeline report here")
	showPlan := fs.Bool("plan", false, "print the per-node static memory plan")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var m *models.Model
	var err error
	if *model != "" {
		var f *os.File
		if f, err = os.Open(*model); err != nil {
			return err
		}
		m, err = modelfile.Parse(f, *batch)
		f.Close()
	} else {
		m, err = models.Build(*arch, models.Config{
			BatchSize: *batch, Classes: *classes,
			InputC: *inC, InputH: *inH, InputW: *inW,
			WidthDiv: *widthDiv, BatchNorm: true, Eval: true,
		})
	}
	if err != nil {
		return err
	}
	store := graph.NewParamStore()
	store.InitFromGraph(m.Graph, rand.New(rand.NewSource(1)), nn.KaimingInit)
	if *snap != "" {
		if err := snapshot.LoadFile(*snap, store, m.BNStates); err != nil {
			return err
		}
	}
	// Inference program over the logits, exactly like `serve -compiled`.
	m.Graph.SetTraining(false)
	m.Graph.SetOutput(m.Logits)

	prog, err := graph.Compile(m.Graph, store, graph.CompileOptions{})
	if err != nil {
		return err
	}
	st := prog.Stats()

	data, peak, err := report.CompileReport(fmt.Sprintf("%s · compiled plan", m.Name), prog)
	if err != nil {
		return err
	}
	// The acceptance identity: what the chart plots as the high-water
	// mark must be the slab size the program actually mapped.
	if peak != prog.SlabBytes() {
		return fmt.Errorf("compile: plotted peak %d bytes != mapped slab %d bytes", peak, prog.SlabBytes())
	}

	fmt.Printf("model:     %s (batch %d)\n", m.Name, *batch)
	fmt.Printf("program:   %d ops -> %d steps (%d fused, %d elided, %d viewed, %d fallback)\n",
		st.Ops, st.Steps, st.Fused, st.Elided, st.Reshaped, st.Fallbacks)
	fmt.Printf("slab:      %s (no-reuse baseline %s, %.1f%% saved)\n",
		report.HumanBytes(float64(st.SlabBytes)), report.HumanBytes(float64(st.NoReuseBytes)),
		100*(1-float64(st.SlabBytes)/float64(max(st.NoReuseBytes, 1))))
	fmt.Printf("verified:  plotted peak == mapped slab (%d bytes)\n", peak)

	if *showPlan {
		fmt.Printf("\n%-24s %-12s %6s %12s %12s %12s  %s\n",
			"node", "kind", "step", "offset", "bytes", "live", "placement")
		for _, r := range data.Table.Rows {
			fmt.Printf("%-24s %-12s %6s %12s %12s %12s  %s\n",
				r[0], r[1], r[2], r[3], r[4], r[5], r[6])
		}
	}
	if *htmlOut != "" {
		if err := report.WriteFile(*htmlOut, data); err != nil {
			return err
		}
		fmt.Printf("report:    %s\n", *htmlOut)
	}
	return nil
}
