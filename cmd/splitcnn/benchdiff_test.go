package main

import (
	"path/filepath"
	"testing"

	"splitcnn/internal/benchlog"
)

func writeBenchLog(t *testing.T, dir, name string, runs ...benchlog.Run) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := benchlog.Write(path, &benchlog.Log{Runs: runs}); err != nil {
		t.Fatal(err)
	}
	return path
}

func benchRun(label string, nsPerOp, imgPerSec float64) benchlog.Run {
	return benchlog.Run{
		Label: label, Go: "go1.24", MaxProcs: 8,
		Benchmarks: []benchlog.Benchmark{{
			Name: "BenchmarkServeLoadtest", N: 64,
			Metrics: map[string]float64{"ns/op": nsPerOp, "img/s": imgPerSec, "avg-batch": 2},
		}},
	}
}

// TestBenchdiffGate is the acceptance test for the regression gate:
// a synthetic 2x ns/op regression must make the command exit non-zero,
// and an improved run must pass.
func TestBenchdiffGate(t *testing.T) {
	dir := t.TempDir()

	regressed := writeBenchLog(t, dir, "BENCH_regressed.json",
		benchRun("baseline", 1_000_000, 800),
		benchRun("regressed", 2_000_000, 790))
	if err := cmdBenchdiff([]string{"-files", regressed}); err == nil {
		t.Fatal("benchdiff passed a 2x ns/op regression")
	}

	improved := writeBenchLog(t, dir, "BENCH_improved.json",
		benchRun("baseline", 1_000_000, 800),
		benchRun("improved", 900_000, 880))
	if err := cmdBenchdiff([]string{"-files", improved}); err != nil {
		t.Fatalf("benchdiff failed an improved run: %v", err)
	}
}

// TestBenchdiffEdgeCases: missing files and single-run logs are skipped
// (the gate must not block a fresh checkout), explicit baselines and
// per-unit threshold overrides are honored.
func TestBenchdiffEdgeCases(t *testing.T) {
	dir := t.TempDir()

	if err := cmdBenchdiff([]string{"-files", filepath.Join(dir, "absent.json")}); err != nil {
		t.Fatalf("missing file should be skipped, got %v", err)
	}
	single := writeBenchLog(t, dir, "BENCH_single.json", benchRun("only", 1_000_000, 800))
	if err := cmdBenchdiff([]string{"-files", single}); err != nil {
		t.Fatalf("single-run log should be skipped, got %v", err)
	}

	// Three runs: fast -> slow -> slow. Latest-vs-previous passes, but
	// pinning the baseline to run 0 must catch the cumulative slide.
	creep := writeBenchLog(t, dir, "BENCH_creep.json",
		benchRun("v0", 1_000_000, 800),
		benchRun("v1", 1_900_000, 800),
		benchRun("v2", 2_000_000, 800))
	if err := cmdBenchdiff([]string{"-files", creep}); err != nil {
		t.Fatalf("latest-vs-previous within threshold should pass, got %v", err)
	}
	if err := cmdBenchdiff([]string{"-files", creep, "-baseline", "0"}); err == nil {
		t.Fatal("baseline 0 should expose the 2x cumulative regression")
	}

	// A 10% slowdown passes the 25% default but fails a 5% override.
	slight := writeBenchLog(t, dir, "BENCH_slight.json",
		benchRun("base", 1_000_000, 800),
		benchRun("new", 1_100_000, 800))
	if err := cmdBenchdiff([]string{"-files", slight}); err != nil {
		t.Fatalf("10%% slowdown should pass the default threshold, got %v", err)
	}
	if err := cmdBenchdiff([]string{"-files", slight, "-thresholds", "ns/op=0.05"}); err == nil {
		t.Fatal("10% slowdown should fail a 5% ns/op override")
	}
}
