// Command splitcnn is the command-line entry point of the Split-CNN +
// HMMS reproduction. Subcommands:
//
//	splitcnn experiment <id> [-scale quick|standard|full]
//	    regenerate a paper table or figure (fig1 fig4 fig5 fig6 fig7
//	    fig8 fig9 fig10 fig11 table1)
//	splitcnn profile   -arch vgg19 -batch 64
//	    print the Figure 1-style layer profile of a model
//	splitcnn plan      -arch vgg19 -batch 64 -method hmms [-split] [-tuned]
//	    run the HMMS pipeline and report throughput and memory pools;
//	    -tuned plans with autotuned (measured) convolution times
//	splitcnn transform -arch vgg19 -depth 0.5 -nh 2 -nw 2
//	    show what the Split-CNN graph transformation does to a model
//	splitcnn train     -arch vgg19 -epochs 6 [-depth 0.5 -splits 4
//	    -stochastic] [-steplog run.jsonl -guards -listen :8080
//	    -calibrate]
//	    train a scaled-down model on the synthetic CIFAR-like dataset,
//	    optionally streaming per-step telemetry, arming anomaly guards
//	    with a flight recorder, serving a live dashboard, and reporting
//	    cost-model drift
//	splitcnn trace     -model alexnet -policy hmms [-replay]
//	    export a run's stream timeline as Chrome trace_event JSON plus
//	    a metrics JSON
//	splitcnn report    -model vgg19 -policy hmms [-split] [-measured]
//	    render a self-contained HTML/SVG memory-occupancy-vs-time
//	    report, one chart per HMMS memory pool; -train run.jsonl
//	    renders the training page (loss, grad norms, step time) from a
//	    steplog stream instead; -dist <trace.json|router URL> renders
//	    the stitched distributed gang timeline for one request
//	splitcnn compile   -arch vgg19 [-plan] [-o plan.html]
//	    lower a model through graph.Compile (inference fusion + static
//	    memory plan) and dump the plan; verifies plotted peak == slab
//	splitcnn tune      -arch alexnet -batch 8 [-split] [-tunecache f]
//	    micro-benchmark every convolution backend (im2col, Winograd,
//	    direct, FFT) per layer shape, print the algorithm table with
//	    measured GFLOP/s, and persist the winning plans
//	splitcnn serve     -addr :8080 -arch vgg19 -snapshot w.snap [-compiled]
//	    HTTP inference server with dynamic micro-batching
//	splitcnn worker    -addr :9090 -arch vgg19 -snapshot w.snap [-maxpods 4]
//	    distributed split-inference shard worker (RPC)
//	splitcnn router    -addr :8080 -workers host:9090,host:9091 [-smoke]
//	    health-checked router scattering spatial shards across workers;
//	    federates worker metrics on /clusterz, stitches cross-process
//	    request traces on /tracez, and publishes SLO burn-rate gauges
//	    (-slo "p99=50ms,err=0.1%")
//	splitcnn loadtest  -spawn -c 16 -n 512 [-target URL] [-spawnworkers 4]
//	    closed-loop concurrent load test against a serve or router
//	    endpoint
//	splitcnn benchdiff -files BENCH_kernels.json,BENCH_serve.json
//	    performance-regression gate: compare the latest benchmark run
//	    against the previous one and exit non-zero past the thresholds
//	splitcnn version
//	    print the binary's build provenance
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"splitcnn/internal/modelfile"

	"splitcnn/internal/autotune"
	"splitcnn/internal/buildinfo"
	"splitcnn/internal/core"
	"splitcnn/internal/costmodel"
	"splitcnn/internal/data"
	"splitcnn/internal/experiments"
	"splitcnn/internal/hmms"
	"splitcnn/internal/models"
	"splitcnn/internal/sim"
	"splitcnn/internal/trace"
	"splitcnn/internal/train"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "experiment":
		err = cmdExperiment(os.Args[2:])
	case "profile":
		err = cmdProfile(os.Args[2:])
	case "plan":
		err = cmdPlan(os.Args[2:])
	case "transform":
		err = cmdTransform(os.Args[2:])
	case "train":
		err = cmdTrain(os.Args[2:])
	case "trace":
		err = cmdTrace(os.Args[2:])
	case "report":
		err = cmdReport(os.Args[2:])
	case "maxbatch":
		err = cmdMaxBatch(os.Args[2:])
	case "compile":
		err = cmdCompile(os.Args[2:])
	case "tune":
		err = cmdTune(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "worker":
		err = cmdWorker(os.Args[2:])
	case "router":
		err = cmdRouter(os.Args[2:])
	case "loadtest":
		err = cmdLoadtest(os.Args[2:])
	case "benchdiff":
		err = cmdBenchdiff(os.Args[2:])
	case "version", "-version", "--version":
		fmt.Println(buildinfo.Get())
	case "help", "-h", "--help":
		usage()
	default:
		usage()
		err = fmt.Errorf("unknown subcommand %q", os.Args[1])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "splitcnn:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: splitcnn <subcommand> [flags]

subcommands:
  experiment <id>   regenerate a paper table/figure (%v)
  profile           Figure 1-style layer profile of a model
  plan              run the HMMS pipeline on a model
  transform         inspect the Split-CNN graph transformation
  maxbatch          search the largest trainable batch on a device
  train             train a scaled-down model on synthetic data
                    (-steplog for per-step telemetry JSONL, -guards for
                    NaN/Inf + explosion guards with a flight recorder,
                    -listen for a live dashboard, -calibrate for
                    plan-vs-actual op-time drift)
  trace             export a run's stream timeline (Chrome trace_event
                    JSON for chrome://tracing) plus a metrics JSON
  report            render a self-contained HTML/SVG memory-occupancy
                    report, one chart per HMMS memory pool (-measured
                    to time real kernels via internal/profile), the
                    training page from a steplog (-train run.jsonl), or
                    the distributed gang timeline for one stitched
                    request (-dist trace.json or -dist http://router)
  compile           lower a model through graph.Compile and dump the
                    rewrite stats + static memory plan (-plan for the
                    per-node table, -o for the HTML slab timeline);
                    self-verifies plotted peak == mapped slab
  tune              micro-benchmark the convolution backends (im2col,
                    Winograd, direct, FFT) on every distinct layer shape
                    and persist the winning per-shape plans
                    (-tunecache for the cache file, "off" to disable)
  serve             HTTP inference server with dynamic micro-batching
                    over the arena executor (-smoke for a CI self-test,
                    -compiled to serve the compiled static program)
  worker            shard-evaluation worker for distributed
                    split-inference: owns a band of feature-map rows per
                    stage and serves Shard.{Eval,Halo,Health} over RPC
  router            health-checked front end over shard workers: spatial
                    scatter/gather with halo exchange, least-loaded gang
                    dispatch, whole-gang retry on worker failure;
                    observability plane federates worker metrics on
                    /clusterz, stitches skew-corrected cross-process
                    traces on /tracez and publishes -slo burn-rate
                    gauges (-spawn N for a loopback fleet, -smoke for
                    the CI bit-identity + crash-recovery +
                    observability self-test)
  loadtest          closed-loop concurrent client for a serve or router
                    endpoint (-spawn to self-host, -spawnworkers N for a
                    loopback distributed fleet, -target URL for a remote
                    endpoint; emits a Benchmark line for
                    cmd/benchjson -o BENCH_serve.json)
  benchdiff         perf-regression gate over the BENCH_*.json logs:
                    latest run vs baseline, per-unit direction-aware
                    thresholds, non-zero exit on regression
  version           print the binary's build provenance
`, experiments.IDs())
}

func deviceFlag(fs *flag.FlagSet) *string {
	return fs.String("device", "p100", "device model: p100 or v100")
}

func pickDevice(name string) (costmodel.DeviceSpec, error) {
	switch name {
	case "p100":
		return costmodel.P100(), nil
	case "v100":
		return costmodel.V100(), nil
	}
	return costmodel.DeviceSpec{}, fmt.Errorf("unknown device %q", name)
}

func cmdExperiment(args []string) error {
	fs := flag.NewFlagSet("experiment", flag.ExitOnError)
	scale := fs.String("scale", "standard", "experiment scale: quick, standard or full")
	dev := deviceFlag(fs)
	seed := fs.Int64("seed", 0, "seed offset for training experiments")
	traceDir := fs.String("tracedir", "", "write per-run trace/metrics JSON into this directory (fig8, fig9)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 1 {
		return fmt.Errorf("experiment: want an experiment id (%v)", experiments.IDs())
	}
	sc, err := experiments.ParseScale(*scale)
	if err != nil {
		return err
	}
	d, err := pickDevice(*dev)
	if err != nil {
		return err
	}
	opt := experiments.Options{Scale: sc, Device: d, Out: os.Stdout, Seed: *seed, TraceDir: *traceDir}
	for _, id := range fs.Args() {
		if err := experiments.Run(id, opt); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
	}
	return nil
}

func buildFullSize(arch string, batch int) (*models.Model, error) {
	return models.Build(arch, models.Config{
		BatchSize: batch, Classes: 1000, InputC: 3, InputH: 224, InputW: 224,
	})
}

// buildModel resolves -model (a model-description file) or -arch (a
// built-in full-size architecture).
func buildModel(modelPath, arch string, batch int) (*models.Model, error) {
	if modelPath == "" {
		return buildFullSize(arch, batch)
	}
	f, err := os.Open(modelPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return modelfile.Parse(f, batch)
}

func cmdProfile(args []string) error {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	arch := fs.String("arch", "vgg19", "architecture")
	batch := fs.Int("batch", 64, "batch size")
	dev := deviceFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	d, err := pickDevice(*dev)
	if err != nil {
		return err
	}
	m, err := buildFullSize(*arch, *batch)
	if err != nil {
		return err
	}
	prog, err := hmms.BuildProgram(m.Graph, d)
	if err != nil {
		return err
	}
	fmt.Printf("%-20s %-10s %10s %12s %12s\n", "layer", "kind", "time(us)", "gen(MB)", "offl(MB)")
	for _, r := range prog.ProfileForward() {
		fmt.Printf("%-20s %-10s %10.1f %12.2f %12.2f\n",
			r.Name, r.Kind, r.Time*1e6, float64(r.GeneratedBytes)/1e6, float64(r.OffloadableBytes)/1e6)
	}
	fmt.Printf("\nforward %.1f ms, backward %.1f ms, stashed %.2f GB, offloadable without loss: %.0f%%\n",
		prog.ForwardTime()*1e3, prog.BackwardTime()*1e3,
		float64(prog.StashedBytes())/1e9, prog.TheoreticalOffloadLimit()*100)
	return nil
}

func cmdPlan(args []string) error {
	fs := flag.NewFlagSet("plan", flag.ExitOnError)
	arch := fs.String("arch", "vgg19", "architecture")
	model := fs.String("model", "", "model description file (overrides -arch)")
	batch := fs.Int("batch", 64, "batch size")
	method := fs.String("method", "hmms", "memory plan: none, layerwise or hmms")
	doSplit := fs.Bool("split", false, "apply the Split-CNN transformation first")
	depth := fs.Float64("depth", 0.75, "splitting depth (with -split)")
	nh := fs.Int("nh", 2, "patch rows (with -split)")
	nw := fs.Int("nw", 2, "patch cols (with -split)")
	tuned := fs.Bool("tuned", false, "autotune the conv layers first and plan with their measured times instead of the roofline model")
	dev := deviceFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	d, err := pickDevice(*dev)
	if err != nil {
		return err
	}
	m, err := buildModel(*model, *arch, *batch)
	if err != nil {
		return err
	}
	g := m.Graph
	if *doSplit {
		sr, err := core.Split(g, core.Config{Depth: *depth, NH: *nh, NW: *nw})
		if err != nil {
			return err
		}
		fmt.Printf("split %d/%d convolution layers into %dx%d patches\n",
			sr.SplitConvs, sr.TotalConvs, *nh, *nw)
		g = sr.Graph
	}
	var mm sim.Method
	switch *method {
	case "none":
		mm = sim.MethodNone
	case "layerwise":
		mm = sim.MethodLayerWise
	case "hmms":
		mm = sim.MethodHMMS
	default:
		return fmt.Errorf("unknown method %q", *method)
	}
	var res *sim.Result
	var prog *hmms.Program
	var mem *hmms.MemoryPlan
	if *tuned {
		// Measure each distinct conv shape once (one timed trial is
		// enough to rank backends) and feed the winners' times into the
		// planner through the measured-override timer.
		autotune.Default.Trials = 1
		n := len(autotune.Default.TuneGraph(g))
		fmt.Printf("autotuned %d conv sites; planning with measured conv times\n", n)
		tp, plan, tm, terr := sim.PlanTimed(g, d, hmms.MeasuredTimer(d, autotune.Default.Overrides), mm, -1)
		if terr != nil {
			return terr
		}
		prog, mem = tp, tm
		if res, terr = sim.Run(tp, plan, tm); terr != nil {
			return terr
		}
	} else if res, prog, mem, err = sim.PlanAndRun(g, d, mm, -1); err != nil {
		return err
	}
	fmt.Printf("method:            %s\n", res.Method)
	fmt.Printf("step time:         %.1f ms (compute %.1f ms, stall %.1f ms)\n",
		res.TotalTime*1e3, res.ComputeTime*1e3, res.StallTime*1e3)
	fmt.Printf("throughput:        %.1f images/s\n", res.Throughput(*batch))
	fmt.Printf("offloaded:         %.2f GB of %.2f GB stashed\n",
		float64(res.OffloadedBytes)/1e9, float64(prog.StashedBytes())/1e9)
	fmt.Printf("device pools:      general %.2f GB + parameters %.2f GB = %.2f GB (capacity %.0f GB)\n",
		float64(mem.PoolBytes[hmms.PoolDeviceGeneral])/1e9,
		float64(mem.PoolBytes[hmms.PoolDeviceParam])/1e9,
		float64(mem.DeviceBytes())/1e9, float64(d.MemCapacity)/1e9)
	fmt.Printf("host pinned pool:  %.2f GB\n", float64(mem.PoolBytes[hmms.PoolHost])/1e9)
	return nil
}

func cmdMaxBatch(args []string) error {
	fs := flag.NewFlagSet("maxbatch", flag.ExitOnError)
	arch := fs.String("arch", "vgg19", "architecture")
	doSplit := fs.Bool("split", false, "apply Split-CNN (depth/nh/nw) + HMMS")
	depth := fs.Float64("depth", 0.75, "splitting depth (with -split)")
	nh := fs.Int("nh", 2, "patch rows")
	nw := fs.Int("nw", 2, "patch cols")
	dev := deviceFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	d, err := pickDevice(*dev)
	if err != nil {
		return err
	}
	eval := func(batch int) (int64, error) {
		m, err := buildFullSize(*arch, batch)
		if err != nil {
			return 0, err
		}
		g := m.Graph
		method := sim.MethodNone
		if *doSplit {
			sr, err := core.Split(g, core.Config{Depth: *depth, NH: *nh, NW: *nw})
			if err != nil {
				return 0, err
			}
			g = sr.Graph
			method = sim.MethodHMMS
		}
		_, _, mem, err := sim.PlanAndRun(g, d, method, -1)
		if err != nil {
			return 0, err
		}
		return mem.DeviceBytes(), nil
	}
	lo, hi := 1, 8192
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if b, err := eval(mid); err == nil && b <= d.MemCapacity {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	bytes, err := eval(lo)
	if err != nil {
		return err
	}
	mode := "baseline"
	if *doSplit {
		mode = fmt.Sprintf("split(%dx%d, depth %.0f%%)+hmms", *nh, *nw, *depth*100)
	}
	fmt.Printf("%s %s on %s (%.0f GiB): max batch %d (planned %.2f GiB)\n",
		*arch, mode, d.Name, float64(d.MemCapacity)/(1<<30), lo, float64(bytes)/(1<<30))
	return nil
}

func cmdTransform(args []string) error {
	fs := flag.NewFlagSet("transform", flag.ExitOnError)
	arch := fs.String("arch", "vgg19", "architecture")
	batch := fs.Int("batch", 1, "batch size")
	depth := fs.Float64("depth", 0.5, "splitting depth")
	nh := fs.Int("nh", 2, "patch rows")
	nw := fs.Int("nw", 2, "patch cols")
	stochastic := fs.Bool("stochastic", false, "stochastic boundaries (ω=0.2)")
	dot := fs.String("dot", "", "write the transformed graph as Graphviz DOT to this file")
	model := fs.String("model", "", "model description file (overrides -arch)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := buildModel(*model, *arch, *batch)
	if err != nil {
		return err
	}
	cfg := core.Config{Depth: *depth, NH: *nh, NW: *nw}
	if *stochastic {
		cfg.Stochastic, cfg.Omega, cfg.Rng = true, 0.2, rand.New(rand.NewSource(1))
	}
	sr, err := core.Split(m.Graph, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("architecture:      %s (%d nodes, %d convolution layers)\n",
		m.Name, len(m.Graph.Nodes), m.ConvCount())
	fmt.Printf("requested depth:   %.1f%%  realized: %.1f%% (%d/%d convs)\n",
		*depth*100, sr.RealizedDepth()*100, sr.SplitConvs, sr.TotalConvs)
	fmt.Printf("patch grid:        %dx%d (%d patches)\n", *nh, *nw, *nh**nw)
	fmt.Printf("split region:      %d layers x %d patches\n", len(sr.RegionOps), *nh**nw)
	fmt.Printf("join points:       %v\n", sr.JoinNames)
	fmt.Printf("transformed graph: %d nodes\n", len(sr.Graph.Nodes))
	if *dot != "" {
		f, err := os.Create(*dot)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := sr.Graph.WriteDOT(f, m.Name+"-split"); err != nil {
			return err
		}
		fmt.Printf("dot graph:         %s\n", *dot)
	}
	return nil
}

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	arch := fs.String("arch", "vgg19", "architecture")
	epochs := fs.Int("epochs", 6, "training epochs")
	batch := fs.Int("batch", 32, "batch size")
	widthDiv := fs.Int("widthdiv", 16, "channel width divisor (mini models)")
	depth := fs.Float64("depth", 0, "splitting depth (0 = baseline)")
	splits := fs.Int("splits", 4, "number of patches (1, 2, 3, 4, 6 or 9)")
	stochastic := fs.Bool("stochastic", false, "stochastic splitting (ω=0.2), evaluated unsplit")
	trainN := fs.Int("train", 1024, "training samples")
	testN := fs.Int("test", 512, "test samples")
	seed := fs.Int64("seed", 7, "random seed")
	traceOut := fs.String("trace", "", "write a per-op execution trace (Chrome trace_event JSON) to this file")
	metricsOut := fs.String("metrics", "", "write trainer metrics JSON to this file")
	savePath := fs.String("save", "", "write a weight snapshot (parameters + BN running stats) after training")
	loadPath := fs.String("load", "", "restore a weight snapshot before training")
	stepLogOut := fs.String("steplog", "", "write per-step telemetry (loss, grad/param norms, step time) as JSONL to this file")
	checkLog := fs.Bool("checksteplog", false, "validate the -steplog file after the run (schema + monotonic steps)")
	listen := fs.String("listen", "", "serve the live trainer dashboard (/, /metricsz, /healthz) on this address")
	pprofOn := fs.Bool("pprof", false, "expose /debug/pprof on the dashboard (with -listen)")
	guards := fs.Bool("guards", false, "arm the NaN/Inf and gradient-explosion guards; a trip halts the run")
	maxGrad := fs.Float64("maxgradnorm", 0, "gradient-explosion threshold on the global grad L2 norm (with -guards; 0 = 1e6)")
	flight := fs.String("flight", "", "write the flight-recorder dump (recent steps + op spans) here when a guard trips")
	calibrate := fs.Bool("calibrate", false, "after the run, report measured-vs-predicted per-op drift against the -device cost model")
	compiledEval := fs.Bool("compiledeval", false, "run per-epoch validation through the compiled static program (bit-identical results)")
	tune := fs.Bool("tune", false, "autotune the convolution backends on the run's shapes before the first step")
	tuneCache := fs.String("tunecache", "", `autotune plan cache file (with -tune; "" = ~/.cache/splitcnn/autotune.json, "off" = no persistence)`)
	dev := deviceFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	grids := map[int][2]int{1: {1, 1}, 2: {1, 2}, 3: {1, 3}, 4: {2, 2}, 6: {2, 3}, 9: {3, 3}}
	grid, ok := grids[*splits]
	if !ok {
		return fmt.Errorf("unsupported split count %d", *splits)
	}
	dcfg := data.CIFARLike(*trainN, *testN)
	dcfg.Noise = 0.9
	dcfg.MaxShift = 6
	ds, err := data.Synthetic(dcfg)
	if err != nil {
		return err
	}
	var rec *trace.Trace
	var met *trace.Metrics
	if *traceOut != "" {
		rec = trace.New()
	}
	if *metricsOut != "" || *listen != "" || *calibrate {
		met = trace.NewMetrics()
	}
	cfg := train.Config{
		Arch:          *arch,
		Model:         models.Config{WidthDiv: *widthDiv, BatchNorm: true},
		BatchSize:     *batch,
		Epochs:        *epochs,
		LR:            0.05,
		Momentum:      0.9,
		WeightDecay:   1e-4,
		LRDecayEpochs: []int{*epochs * 2 / 3},
		Split:         core.Config{Depth: *depth, NH: grid[0], NW: grid[1], Stochastic: *stochastic, Omega: 0.2},
		EvalUnsplit:   *stochastic,
		CompiledEval:  *compiledEval,
		Tune:          *tune,
		Seed:          *seed,
		SavePath:      *savePath,
		LoadPath:      *loadPath,
		Progress: func(epoch int, loss, errRate float64) {
			fmt.Printf("epoch %2d  train loss %.4f  test error %.4f\n", epoch, loss, errRate)
		},
	}
	if rec != nil {
		cfg.Recorder = rec
	}
	cfg.Metrics = met
	if *guards || *flight != "" {
		cfg.Guard = train.GuardConfig{Enabled: true, MaxGradNorm: *maxGrad, FlightPath: *flight}
	}
	if *tune {
		path, err := tuneCachePath(*tuneCache)
		if err != nil {
			return err
		}
		cfg.TuneCache = path
	}
	if *calibrate {
		d, err := pickDevice(*dev)
		if err != nil {
			return err
		}
		cfg.Calibrate = &d
	}
	var sl *trace.StepLog
	if *stepLogOut != "" {
		if sl, err = trace.CreateStepLog(*stepLogOut); err != nil {
			return err
		}
		cfg.StepLog = sl
	}
	if *listen != "" {
		dash, err := train.StartDashboard(*listen, met, *pprofOn)
		if err != nil {
			return err
		}
		defer dash.Close()
		fmt.Printf("dashboard: http://%s/\n", dash.Addr())
	}
	res, err := train.Run(cfg, ds)
	// The steplog must flush even when the run halted (a guard trip is
	// exactly when the stream matters most).
	if sl != nil {
		if cerr := sl.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		return err
	}
	fmt.Printf("final test error: %.4f (split %d/%d convs)\n", res.FinalTestErr, res.SplitConvs, res.TotalConvs)
	if sl != nil {
		steps, epochs := sl.Counts()
		fmt.Printf("steplog: %s (%d steps, %d epochs)\n", *stepLogOut, steps, epochs)
		if *checkLog {
			f, err := os.Open(*stepLogOut)
			if err != nil {
				return err
			}
			cs, ce, cerr := trace.CheckStepLog(f)
			f.Close()
			if cerr != nil {
				return fmt.Errorf("steplog check: %w", cerr)
			}
			fmt.Printf("steplog check: ok (%d steps, %d epochs)\n", cs, ce)
		}
	}
	if res.Drift != nil {
		fmt.Printf("calibration: %d ops, drift geomean %.2fx, max %.2fx at %s\n",
			len(res.Drift.Ops), res.Drift.GeoMeanRatio, res.Drift.MaxRatio, res.Drift.MaxOp)
	}
	if *savePath != "" {
		fmt.Printf("snapshot: %s\n", *savePath)
	}
	if rec != nil {
		if err := rec.WriteFile(*traceOut); err != nil {
			return err
		}
		fmt.Printf("trace:   %s (%d events)\n", *traceOut, rec.Len())
	}
	if met != nil && *metricsOut != "" {
		if err := met.WriteFile(*metricsOut); err != nil {
			return err
		}
		fmt.Printf("metrics: %s\n", *metricsOut)
	}
	return nil
}
