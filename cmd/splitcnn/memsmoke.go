package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync"
	"time"

	"splitcnn/internal/distserve"
	"splitcnn/internal/memobs"
	"splitcnn/internal/models"
	"splitcnn/internal/serve"
	"splitcnn/internal/trace"
)

// memSmoke is the CI `make mem-smoke` target: it exercises the memory
// observability plane end to end, race-enabled, in this one process.
//
// Phase 1 boots a compiled single-process server with fast profiler
// windows, drives concurrent load through the real HTTP surface, and
// asserts that /profilez serves per-op CPU attribution and a raw pprof
// download, that /metricsz carries the measured-memory gauge family
// (measured high water, planned slab, finite drift) and the
// per-request footprint histograms, and that the in-process measured
// timeline satisfies the hard plan invariant.
//
// Phase 2 boots a two-worker loopback fleet whose workers expose debug
// HTTP listeners, drives load through the router, and asserts that all
// three processes' /profilez surfaces answer with per-op attribution
// and that the router's /clusterz federates the workers' runtime
// memory gauges into the cluster.mem.* rollups.
func memSmoke() error {
	if err := memSmokeServe(); err != nil {
		return fmt.Errorf("memsmoke serve: %w", err)
	}
	if err := memSmokeFleet(); err != nil {
		return fmt.Errorf("memsmoke fleet: %w", err)
	}
	fmt.Println("mem smoke ok")
	return nil
}

// profilezView mirrors the /profilez?format=json body.
type profilezView struct {
	Report    *memobs.Report        `json:"report"`
	Timelines []*memobs.MemTimeline `json:"timelines"`
}

func memSmokeServe() error {
	spec := serve.Spec{
		Name: "memsmoke", Arch: "alexnet",
		Model: models.Config{
			Classes: 10, InputC: 3, InputH: 64, InputW: 64,
			WidthDiv: 16, BatchNorm: true,
		},
		MaxBatch: 4, Compiled: true,
	}
	reg, err := serve.NewRegistry(spec)
	if err != nil {
		return err
	}
	met := trace.NewMetrics()
	srv := serve.NewServer(reg, serve.Options{
		MaxDelay:               time.Millisecond,
		QueueDepth:             1024,
		RequestTimeout:         30 * time.Second,
		Metrics:                met,
		RuntimeMetricsInterval: 50 * time.Millisecond,
		ProfileWindow:          250 * time.Millisecond,
		ProfileEvery:           300 * time.Millisecond,
	})
	bound, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return err
	}
	base := "http://" + bound.String()
	inst, _ := reg.Lookup("")

	stopLoad, waitLoad := startLoad(base, inst.ImageLen(), 4)
	view, err := awaitProfile(base+"/profilez", 30*time.Second)
	stopLoad()
	waitLoad()
	if err != nil {
		return err
	}
	if len(view.Timelines) == 0 || len(view.Timelines[0].Samples) == 0 {
		return fmt.Errorf("/profilez has no measured timeline samples")
	}

	// Raw pprof download of the captured window.
	resp, err := http.Get(base + "/profilez?download=cpu")
	if err != nil {
		return err
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(raw) == 0 {
		return fmt.Errorf("profilez cpu download: status %d, %d bytes", resp.StatusCode, len(raw))
	}

	// Measured-memory gauge family and per-request footprint histograms.
	snap, err := scrapeSnapshot(base)
	if err != nil {
		return err
	}
	if v := snap.Gauges["mem.measured_high_water_bytes"]; v <= 0 {
		return fmt.Errorf("mem.measured_high_water_bytes = %g, want > 0", v)
	}
	if v := snap.Gauges["mem.planned_slab_bytes"]; v <= 0 {
		return fmt.Errorf("mem.planned_slab_bytes = %g, want > 0", v)
	}
	drift := snap.Gauges["mem.drift_ratio.max"]
	if drift <= 0 || math.IsInf(drift, 0) || math.IsNaN(drift) {
		return fmt.Errorf("mem.drift_ratio.max = %g, want finite > 0", drift)
	}
	if h, ok := snap.Histograms["serve.request_peak_bytes"]; !ok || h.Count == 0 {
		return fmt.Errorf("serve.request_peak_bytes histogram missing or empty")
	}
	if h, ok := snap.Histograms["serve.request_bytes_per_image"]; !ok || h.Count == 0 {
		return fmt.Errorf("serve.request_bytes_per_image histogram missing or empty")
	}

	// The hard invariant, on the live collector: measured slab usage
	// never exceeds the static plan.
	tl := inst.Mem.Timeline()
	if err := tl.Verify(); err != nil {
		return err
	}
	if err := tl.CheckAgainstPlan(); err != nil {
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return srv.Shutdown(ctx)
}

func memSmokeFleet() error {
	spec := serve.Spec{
		Name: "memsmoke-dist", Arch: "vgg19",
		Model: models.Config{
			Classes: 10, InputC: 3, InputH: 32, InputW: 32,
			WidthDiv: 16, BatchNorm: true,
		},
		MaxBatch: 4,
	}
	var workers []*distserve.Worker
	var addrs []string
	for i := 0; i < 2; i++ {
		w, err := distserve.StartWorker("127.0.0.1:0", distserve.WorkerConfig{
			Spec: spec, MaxPods: 8,
			DebugAddr:              "127.0.0.1:0",
			RuntimeMetricsInterval: 50 * time.Millisecond,
			ProfileWindow:          250 * time.Millisecond,
			ProfileEvery:           300 * time.Millisecond,
		})
		if err != nil {
			return fmt.Errorf("spawn worker %d: %w", i, err)
		}
		defer w.Close()
		workers = append(workers, w)
		addrs = append(addrs, w.Addr())
	}
	rt, err := distserve.NewRouter(distserve.RouterOptions{
		Spec: spec, Workers: addrs,
		RequestTimeout:         30 * time.Second,
		Metrics:                trace.NewMetrics(),
		RuntimeMetricsInterval: 50 * time.Millisecond,
		ProfileWindow:          250 * time.Millisecond,
		ProfileEvery:           300 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	bound, err := rt.Start("127.0.0.1:0")
	if err != nil {
		return err
	}
	base := "http://" + bound.String()
	imageLen := spec.Model.InputC * spec.Model.InputH * spec.Model.InputW

	stopLoad, waitLoad := startLoad(base, imageLen, 4)
	// The router and every worker must answer /profilez with a captured
	// window; the profilers share one process-global CPU profiler and
	// skip contended windows, so poll each surface generously.
	surfaces := []string{base + "/profilez"}
	for i, w := range workers {
		if w.DebugAddr() == "" {
			return fmt.Errorf("worker %d has no debug listener", i)
		}
		surfaces = append(surfaces, "http://"+w.DebugAddr()+"/profilez")
	}
	for _, url := range surfaces {
		if _, err := awaitProfile(url, 60*time.Second); err != nil {
			stopLoad()
			waitLoad()
			return fmt.Errorf("%s: %w", url, err)
		}
	}
	stopLoad()
	waitLoad()

	// Federation: the workers' runtime samplers must roll up into the
	// cluster-wide memory gauges on /clusterz.
	resp, err := http.Get(base + "/clusterz?format=json")
	if err != nil {
		return err
	}
	var view struct {
		Cluster trace.Snapshot `json:"cluster"`
	}
	err = json.NewDecoder(resp.Body).Decode(&view)
	resp.Body.Close()
	if err != nil {
		return err
	}
	for _, g := range []string{
		"cluster.mem.heap_alloc_bytes_total",
		"cluster.mem.heap_alloc_bytes_max_worker",
		"cluster.mem.heap_sys_bytes_total",
	} {
		if v := view.Cluster.Gauges[g]; v <= 0 {
			return fmt.Errorf("clusterz rollup %s = %g, want > 0", g, v)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return rt.Shutdown(ctx)
}

// startLoad runs conc closed-loop clients posting zero-image predicts
// until the returned stop function is called; wait joins them.
func startLoad(base string, imageLen, conc int) (stop, wait func()) {
	body, _ := json.Marshal(serve.PredictRequest{Image: make([]float32, imageLen)})
	stopCh := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < conc; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stopCh:
					return
				default:
				}
				resp, err := http.Post(base+"/v1/predict", "application/json", bytes.NewReader(body))
				if err == nil {
					io.Copy(io.Discard, resp.Body) //nolint:errcheck
					resp.Body.Close()
				}
			}
		}()
	}
	var once sync.Once
	return func() { once.Do(func() { close(stopCh) }) }, wg.Wait
}

// awaitProfile polls url?format=json until a profile window with
// sampled CPU and at least one per-op attribution row has landed.
func awaitProfile(url string, timeout time.Duration) (*profilezView, error) {
	deadline := time.Now().Add(timeout)
	var last string
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "?format=json")
		if err != nil {
			last = err.Error()
			time.Sleep(100 * time.Millisecond)
			continue
		}
		var view profilezView
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			last = fmt.Sprintf("status %d, err %v", resp.StatusCode, err)
			time.Sleep(100 * time.Millisecond)
			continue
		}
		if view.Report != nil && view.Report.CPUSeconds > 0 && len(view.Report.Ops) > 0 {
			return &view, nil
		}
		last = "no completed profile window yet"
		time.Sleep(100 * time.Millisecond)
	}
	return nil, fmt.Errorf("profilez never produced per-op attribution (%s)", last)
}

// scrapeSnapshot fetches the target's /metricsz JSON snapshot.
func scrapeSnapshot(base string) (*trace.Snapshot, error) {
	resp, err := http.Get(base + "/metricsz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("metricsz status %d", resp.StatusCode)
	}
	var snap trace.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, err
	}
	return &snap, nil
}
