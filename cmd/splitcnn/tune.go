package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"splitcnn/internal/autotune"
	"splitcnn/internal/core"
	"splitcnn/internal/graph"
	"splitcnn/internal/modelfile"
	"splitcnn/internal/models"
)

// cmdTune runs the convolution autotuner over a model's distinct conv
// sites and prints the per-layer algorithm table: every measured
// backend's GFLOP/s, the winner, and its speedup over the untuned
// heuristic. The plan cache is loaded first (cached sites skip
// re-measurement), saved after, and verified by a reload.
func cmdTune(args []string) error {
	fs := flag.NewFlagSet("tune", flag.ExitOnError)
	model := fs.String("model", "", "model description file (overrides -arch)")
	arch := fs.String("arch", "vgg19", "built-in architecture")
	widthDiv := fs.Int("widthdiv", 16, "channel width divisor (with -arch)")
	classes := fs.Int("classes", 10, "classifier width (with -arch)")
	inC := fs.Int("inc", 3, "input channels (with -arch)")
	inH := fs.Int("inh", 32, "input height (with -arch)")
	inW := fs.Int("inw", 32, "input width (with -arch)")
	batch := fs.Int("batch", 8, "batch size (part of the plan key)")
	doSplit := fs.Bool("split", false, "apply the Split-CNN transformation first (tunes the per-patch shapes)")
	depth := fs.Float64("depth", 0.75, "splitting depth (with -split)")
	nh := fs.Int("nh", 2, "patch rows (with -split)")
	nw := fs.Int("nw", 2, "patch cols (with -split)")
	trials := fs.Int("trials", 3, "timed repetitions per candidate (the minimum is kept)")
	cache := fs.String("tunecache", "", `plan cache file ("" = ~/.cache/splitcnn/autotune.json, "off" = no persistence)`)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var g *graph.Graph
	var name string
	if *model != "" {
		f, err := os.Open(*model)
		if err != nil {
			return err
		}
		m, err := modelfile.Parse(f, *batch)
		f.Close()
		if err != nil {
			return err
		}
		g, name = m.Graph, m.Name
	} else {
		m, err := models.Build(*arch, models.Config{
			BatchSize: *batch, Classes: *classes,
			InputC: *inC, InputH: *inH, InputW: *inW,
			WidthDiv: *widthDiv, BatchNorm: true,
		})
		if err != nil {
			return err
		}
		g, name = m.Graph, m.Name
	}
	if *doSplit {
		sr, err := core.Split(g, core.Config{Depth: *depth, NH: *nh, NW: *nw})
		if err != nil {
			return err
		}
		fmt.Printf("split %d/%d convolution layers into %dx%d patches\n",
			sr.SplitConvs, sr.TotalConvs, *nh, *nw)
		g = sr.Graph
	}

	path, err := tuneCachePath(*cache)
	if err != nil {
		return err
	}
	t := autotune.Default
	t.Trials = *trials
	if path != "" {
		if err := t.Load(path); err != nil {
			return err
		}
	}

	results := t.TuneGraph(g)
	if len(results) == 0 {
		return fmt.Errorf("tune: %s has no convolution layers", name)
	}
	printTuneTable(results)

	nonDefault, cached := 0, 0
	for _, r := range results {
		if r.Decision.Algo != autotune.DefaultAlgo(r.Site.Params) {
			nonDefault++
		}
		if r.Cached {
			cached++
		}
	}
	fmt.Printf("\n%s (env %s): %d distinct conv sites, %d cache hits, %d won by a non-default backend\n",
		name, autotune.Env(), len(results), cached, nonDefault)

	if path != "" {
		if err := t.Save(); err != nil {
			return err
		}
		// Reload through a fresh tuner: every plan just written must come
		// back with the same winning algorithm.
		check := autotune.New()
		if err := check.Load(path); err != nil {
			return err
		}
		for _, r := range results {
			a, ok := check.Plan(r.Site.Params, r.Site.In, r.Site.Cout)
			if !ok || a != r.Decision.Algo {
				return fmt.Errorf("tune: cache verify: site %s reloaded as %v/%v, want %v",
					r.Site.Name, a, ok, r.Decision.Algo)
			}
		}
		fmt.Printf("cache: %s (%d plans, reload verified)\n", path, check.Len())
	}
	return nil
}

// tuneCachePath resolves the -tunecache flag: "" means the per-user
// default location, "off" disables persistence.
func tuneCachePath(flagValue string) (string, error) {
	switch flagValue {
	case "off":
		return "", nil
	case "":
		return autotune.DefaultCachePath()
	}
	return flagValue, nil
}

// tuneFLOPs counts a conv site's forward multiply-adds (x2), the
// numerator of the table's GFLOP/s columns.
func tuneFLOPs(s autotune.Site) float64 {
	oh, ow := s.Params.OutSize(s.In.H(), s.In.W())
	return 2 * float64(s.In.N()) * float64(s.Cout) * float64(oh) * float64(ow) *
		float64(s.In.C()) * float64(s.Params.KH) * float64(s.Params.KW)
}

func printTuneTable(results []autotune.Result) {
	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprint(w, "layer\tinput\tkernel\t")
	for a := autotune.Algo(0); a < autotune.NumAlgos; a++ {
		fmt.Fprintf(w, "%s\t", a)
	}
	fmt.Fprintln(w, "winner\tvs default")
	for _, r := range results {
		s := r.Site
		fmt.Fprintf(w, "%s\t%dx%dx%dx%d\t%dx%ds%d\t",
			s.Name, s.In.N(), s.In.C(), s.In.H(), s.In.W(),
			s.Params.KH, s.Params.KW, s.Params.SH)
		flops := tuneFLOPs(s)
		for a := autotune.Algo(0); a < autotune.NumAlgos; a++ {
			if secs, ok := r.Decision.Seconds[a]; ok && secs > 0 {
				fmt.Fprintf(w, "%.1f\t", flops/secs/1e9)
			} else {
				fmt.Fprint(w, "-\t")
			}
		}
		def := autotune.DefaultAlgo(s.Params)
		speed := ""
		if ds, ok := r.Decision.Seconds[def]; ok && ds > 0 {
			if ws := r.Decision.Seconds[r.Decision.Algo]; ws > 0 {
				speed = fmt.Sprintf("%.2fx", ds/ws)
			}
		}
		mark := ""
		if r.Decision.Algo != def {
			mark = " *"
		}
		if r.Cached {
			mark += " (cached)"
		}
		fmt.Fprintf(w, "%s%s\t%s\n", r.Decision.Algo, mark, speed)
	}
	w.Flush()
}
