package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	neturl "net/url"
	"os"
	"strings"

	"splitcnn/internal/core"
	"splitcnn/internal/hmms"
	"splitcnn/internal/models"
	"splitcnn/internal/profile"
	"splitcnn/internal/report"
	"splitcnn/internal/serve"
	"splitcnn/internal/sim"
	"splitcnn/internal/trace"
)

// resolveModelArg resolves a -model value that accepts either a builtin
// architecture name or a model-description file path, returning the
// (modelPath, arch) pair buildModel expects.
func resolveModelArg(model string) (modelPath, arch string, err error) {
	for _, a := range models.Architectures() {
		if a == model {
			return "", model, nil
		}
	}
	if _, statErr := os.Stat(model); statErr != nil {
		return "", "", fmt.Errorf("-model %q is neither a builtin architecture %v nor a readable file",
			model, models.Architectures())
	}
	return model, "", nil
}

// cmdReport replays an HMMS memory plan over one training step and
// renders a self-contained HTML/SVG memory-occupancy-vs-time report,
// one chart per pool:
//
//	splitcnn report -model vgg19 -policy hmms -split -o report.html
//
// Op times come from the analytic cost model by default; -measured
// times each op's real forward kernel via internal/profile and drives
// the identical planner from the measurements. Before writing, the
// command cross-checks the plotted device high-water mark against the
// mem.device_high_water_bytes gauge of the same run — they must be
// equal to the byte.
func cmdReport(args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	model := fs.String("model", "vgg19", "builtin architecture ("+fmt.Sprint(models.Architectures())+") or a model description file")
	policy := fs.String("policy", "hmms", "memory policy: none, layerwise or hmms")
	batch := fs.Int("batch", 64, "batch size")
	doSplit := fs.Bool("split", false, "apply the Split-CNN transformation first")
	depth := fs.Float64("depth", 0.75, "splitting depth (with -split)")
	nh := fs.Int("nh", 2, "patch rows (with -split)")
	nw := fs.Int("nw", 2, "patch cols (with -split)")
	limit := fs.Float64("limit", -1, "offload cap as a fraction of stashed bytes (negative = theoretical limit)")
	measured := fs.Bool("measured", false, "time ops by running their real kernels (internal/profile) instead of the cost model")
	repeats := fs.Int("repeats", 5, "timed executions per op (with -measured; the paper uses 20)")
	widthDiv := fs.Int("widthdiv", 1, "channel width divisor (scale the model down for -measured runs)")
	inputHW := fs.Int("inputhw", 224, "input height/width (scale the model down for -measured runs)")
	out := fs.String("o", "report.html", "report output file")
	metricsOut := fs.String("metrics", "", "also write the run's metrics JSON here")
	trainLog := fs.String("train", "", "render a training report from this steplog JSONL (from `splitcnn train -steplog`) instead of a memory timeline")
	distTrace := fs.String("dist", "", "render a distributed gang timeline from this trace file or router URL (its /tracez) instead of a memory timeline")
	distReq := fs.String("req", "", "request ID to render (with -dist; default: the request with the most spans)")
	memMeasured := fs.Bool("mem", false, "render the measured-vs-planned memory overlay by running the compiled model (uses -model/-batch/-widthdiv/-inputhw)")
	memPasses := fs.Int("passes", 3, "measured forward passes (with -mem)")
	dev := deviceFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *trainLog != "" {
		return trainReport(*trainLog, *out)
	}
	if *distTrace != "" {
		return distReport(*distTrace, *distReq, *out)
	}
	if *memMeasured {
		return memReport(*model, *batch, *widthDiv, *inputHW, *memPasses, *out, *metricsOut)
	}
	d, err := pickDevice(*dev)
	if err != nil {
		return err
	}

	modelPath, arch := "", ""
	var m *models.Model
	if *widthDiv > 1 || *inputHW != 224 {
		// Scaled-down builtin (practical for -measured on a CPU).
		m, err = models.Build(*model, models.Config{
			BatchSize: *batch, Classes: 10, InputC: 3,
			InputH: *inputHW, InputW: *inputHW, WidthDiv: *widthDiv,
		})
	} else {
		if modelPath, arch, err = resolveModelArg(*model); err == nil {
			m, err = buildModel(modelPath, arch, *batch)
		}
	}
	if err != nil {
		return err
	}
	g := m.Graph
	title := fmt.Sprintf("%s memory timeline", *model)
	if *doSplit {
		sr, err := core.Split(g, core.Config{Depth: *depth, NH: *nh, NW: *nw})
		if err != nil {
			return err
		}
		g = sr.Graph
		title = fmt.Sprintf("%s (split %dx%d, depth %.0f%%) memory timeline", *model, *nh, *nw, *depth*100)
	}

	var method sim.Method
	switch *policy {
	case "none", "baseline":
		method = sim.MethodNone
	case "layerwise":
		method = sim.MethodLayerWise
	case "hmms":
		method = sim.MethodHMMS
	default:
		return fmt.Errorf("report: unknown policy %q (want none, layerwise or hmms)", *policy)
	}

	var prog *hmms.Program
	if *measured {
		opt := profile.DefaultOptions()
		opt.Repeats = *repeats
		prog, err = profile.BuildProgram(g, d, opt)
	} else {
		prog, err = hmms.BuildProgram(g, d)
	}
	if err != nil {
		return err
	}
	plan, mem, err := sim.PlanFromProgram(prog, method, *limit)
	if err != nil {
		return err
	}
	res, err := sim.Run(prog, plan, mem)
	if err != nil {
		return err
	}

	met := trace.NewMetrics()
	res.RecordMetrics(met)
	mem.RecordMetrics(met)

	data, plotted, err := report.MemoryReport(title, res, prog, mem)
	if err != nil {
		return err
	}
	// Self-verification: the plotted combined device high-water mark and
	// the run's mem.device_high_water_bytes gauge are the same quantity
	// computed two ways; refuse to emit a report that disagrees with its
	// own metrics.
	if gauge := int64(met.Gauge("mem.device_high_water_bytes").Value()); plotted != gauge {
		return fmt.Errorf("report: plotted device high water %d != mem.device_high_water_bytes gauge %d", plotted, gauge)
	}
	if err := report.WriteFile(*out, data); err != nil {
		return err
	}
	if *metricsOut != "" {
		if err := met.WriteFile(*metricsOut); err != nil {
			return err
		}
	}

	timing := "cost model"
	if *measured {
		timing = fmt.Sprintf("measured (%d repeats)", *repeats)
	}
	fmt.Printf("method:      %s (%s timing)\n", res.Method, timing)
	fmt.Printf("step time:   %.2f ms (stall %.2f ms)\n", res.TotalTime*1e3, res.StallTime*1e3)
	fmt.Printf("device peak: %s (plotted == mem.device_high_water_bytes gauge)\n",
		report.HumanBytes(float64(plotted)))
	fmt.Printf("report:      %s (%d charts)\n", *out, len(data.Charts))
	if *metricsOut != "" {
		fmt.Printf("metrics:     %s\n", *metricsOut)
	}
	return nil
}

// memReport renders the measured-vs-planned memory overlay: it loads
// the model through the compiled serving path, runs a few measured
// forward passes, and plots the per-step bytes the executor actually
// touched against the static plan's live bytes:
//
//	splitcnn report -mem -model vgg11 -batch 2 -widthdiv 8 -inputhw 32 -o mem.html
//
// Like the simulated memory report, the page is self-verifying: the
// builder refuses corrupted timelines, the hard plan invariant
// (referenced slab bytes ≤ planned live bytes ≤ planned slab) is
// enforced, and the plotted measured peak must equal the run's
// mem.measured_high_water_bytes gauge to the byte before anything is
// written.
func memReport(model string, batch, widthDiv, inputHW, passes int, out, metricsOut string) error {
	modelPath, arch, err := resolveModelArg(model)
	if err != nil {
		return err
	}
	inst, err := serve.Load(serve.Spec{
		Name: model, ModelFile: modelPath, Arch: arch,
		Model: models.Config{
			Classes: 10, InputC: 3, InputH: inputHW, InputW: inputHW, WidthDiv: widthDiv,
		},
		MaxBatch: batch, Compiled: true,
	})
	if err != nil {
		return err
	}
	if passes < 1 {
		passes = 1
	}
	for i := 0; i < passes; i++ {
		if _, err := inst.Run(make([][]float32, batch)); err != nil {
			return err
		}
	}

	tl := inst.Mem.Timeline()
	met := trace.NewMetrics()
	tl.Record(met)

	title := fmt.Sprintf("%s measured memory (batch %d)", model, batch)
	data, plotted, err := report.MeasuredMemReport(title, tl)
	if err != nil {
		return err
	}
	// Self-verification: the plotted measured peak and the run's
	// mem.measured_high_water_bytes gauge are the same quantity computed
	// two ways; refuse to emit a report that disagrees with its own
	// metrics surface.
	if gauge := int64(met.Gauge("mem.measured_high_water_bytes").Value()); plotted != gauge {
		return fmt.Errorf("report: plotted measured peak %d != mem.measured_high_water_bytes gauge %d", plotted, gauge)
	}
	if err := report.WriteFile(out, data); err != nil {
		return err
	}
	if metricsOut != "" {
		if err := met.WriteFile(metricsOut); err != nil {
			return err
		}
	}

	driftMax, driftAt := tl.DriftMax()
	fmt.Printf("passes:        %d (%d steps each)\n", tl.Passes, len(tl.Samples))
	fmt.Printf("measured peak: %s (plotted == mem.measured_high_water_bytes gauge)\n",
		report.HumanBytes(float64(plotted)))
	fmt.Printf("planned slab:  %s · drift max %.3f at %s\n",
		report.HumanBytes(float64(tl.PlannedSlabBytes)), driftMax, driftAt)
	fmt.Printf("report:        %s\n", out)
	if metricsOut != "" {
		fmt.Printf("metrics:       %s\n", metricsOut)
	}
	return nil
}

// trainReport renders the training-run page from a steplog stream:
//
//	splitcnn report -train run.jsonl -o train.html
func trainReport(logPath, out string) error {
	f, err := os.Open(logPath)
	if err != nil {
		return err
	}
	steps, epochs, err := trace.ReadStepLog(f)
	f.Close()
	if err != nil {
		return err
	}
	data, err := report.TrainReport(fmt.Sprintf("training run · %s", logPath), steps, epochs)
	if err != nil {
		return err
	}
	if err := report.WriteFile(out, data); err != nil {
		return err
	}
	fmt.Printf("steplog:     %s (%d steps, %d epochs)\n", logPath, len(steps), len(epochs))
	fmt.Printf("report:      %s (%d charts)\n", out, len(data.Charts))
	return nil
}

// distReport renders the stitched gang timeline for one distributed
// request from a Chrome trace export — a file written by `-traceout`,
// or a live router's /tracez:
//
//	splitcnn report -dist http://127.0.0.1:8080 -o gang.html
//
// Mirroring the memory reports' plotted-vs-gauge cross-check, the
// command refuses to write a page whose plotted critical path disagrees
// with the measured request span.
func distReport(src, reqID, out string) error {
	var raw []byte
	var err error
	if strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://") {
		url := src
		if u, perr := neturl.Parse(src); perr == nil && (u.Path == "" || u.Path == "/") {
			url = strings.TrimSuffix(src, "/") + "/tracez"
		}
		resp, herr := http.Get(url)
		if herr != nil {
			return fmt.Errorf("report: fetching %s: %w", url, herr)
		}
		raw, err = io.ReadAll(resp.Body)
		resp.Body.Close()
		if err == nil && resp.StatusCode != http.StatusOK {
			err = fmt.Errorf("report: %s returned status %d", url, resp.StatusCode)
		}
	} else {
		raw, err = os.ReadFile(src)
	}
	if err != nil {
		return err
	}
	var events []trace.Event
	if err := json.Unmarshal(raw, &events); err != nil {
		return fmt.Errorf("report: %s is not a Chrome trace_event export: %w", src, err)
	}

	data, sum, err := report.DistReport(fmt.Sprintf("gang timeline · %s", src), events, reqID)
	if err != nil {
		return err
	}
	// Self-verification: the router lane is a gap-free decomposition of
	// the request span, so the plotted segments must sum to the measured
	// request duration.
	if err := sum.Verify(); err != nil {
		return err
	}
	if err := report.WriteFile(out, data); err != nil {
		return err
	}
	fmt.Printf("request:       %s (%d processes, %d spans)\n", sum.Request, sum.Processes, sum.Spans)
	fmt.Printf("critical path: %s plotted == %s measured\n",
		report.HumanSeconds(sum.PlottedSeconds), report.HumanSeconds(sum.RequestSeconds))
	fmt.Printf("report:        %s\n", out)
	return nil
}
