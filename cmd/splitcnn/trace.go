package main

import (
	"flag"
	"fmt"

	"splitcnn/internal/core"
	"splitcnn/internal/hmms"
	"splitcnn/internal/models"
	"splitcnn/internal/sim"
	"splitcnn/internal/trace"
)

// cmdTrace runs a model under a memory policy and exports the resulting
// stream timeline as Chrome trace_event JSON plus a metrics JSON:
//
//	splitcnn trace -model alexnet -policy hmms
//
// writes trace.json (open in chrome://tracing or Perfetto) and
// metrics.json, whose sim.stall_seconds and mem.device_high_water_bytes
// equal the simulator's and memory planner's numbers exactly.
func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	model := fs.String("model", "alexnet", "builtin architecture ("+fmt.Sprint(models.Architectures())+") or a model description file")
	policy := fs.String("policy", "hmms", "memory policy: none, layerwise or hmms")
	batch := fs.Int("batch", 64, "batch size")
	doSplit := fs.Bool("split", false, "apply the Split-CNN transformation first")
	depth := fs.Float64("depth", 0.75, "splitting depth (with -split)")
	nh := fs.Int("nh", 2, "patch rows (with -split)")
	nw := fs.Int("nw", 2, "patch cols (with -split)")
	limit := fs.Float64("limit", -1, "offload cap as a fraction of stashed bytes (negative = theoretical limit)")
	replay := fs.Bool("replay", false, "trace the discrete-event device replay (one lane per memory stream) instead of the analytic timeline")
	out := fs.String("o", "trace.json", "trace output file")
	metricsOut := fs.String("metrics", "metrics.json", "metrics output file")
	dev := deviceFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	d, err := pickDevice(*dev)
	if err != nil {
		return err
	}

	// -model accepts a builtin architecture name first, then a file.
	modelPath, arch, err := resolveModelArg(*model)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	m, err := buildModel(modelPath, arch, *batch)
	if err != nil {
		return err
	}
	g := m.Graph
	if *doSplit {
		sr, err := core.Split(g, core.Config{Depth: *depth, NH: *nh, NW: *nw})
		if err != nil {
			return err
		}
		g = sr.Graph
	}

	var method sim.Method
	switch *policy {
	case "none", "baseline":
		method = sim.MethodNone
	case "layerwise":
		method = sim.MethodLayerWise
	case "hmms":
		method = sim.MethodHMMS
	default:
		return fmt.Errorf("trace: unknown policy %q (want none, layerwise or hmms)", *policy)
	}

	prog, plan, mem, err := sim.Plan(g, d, method, *limit)
	if err != nil {
		return err
	}
	res, err := sim.Run(prog, plan, mem)
	if err != nil {
		return err
	}

	tr := trace.New()
	if *replay {
		if _, err := sim.ReplayTraced(prog, plan, mem, 0, tr); err != nil {
			return err
		}
	} else {
		res.EmitTrace(tr)
	}
	if err := tr.WriteFile(*out); err != nil {
		return err
	}

	met := trace.NewMetrics()
	res.RecordMetrics(met)
	mem.RecordMetrics(met)
	met.Counter("prog.ops").Add(int64(len(prog.Ops)))
	met.Counter("prog.stashed_bytes").Add(prog.StashedBytes())
	if err := met.WriteFile(*metricsOut); err != nil {
		return err
	}

	fmt.Printf("method:     %s\n", res.Method)
	fmt.Printf("step time:  %.2f ms (compute %.2f ms, stall %.2f ms)\n",
		res.TotalTime*1e3, res.ComputeTime*1e3, res.StallTime*1e3)
	fmt.Printf("device:     %.2f GB peak, %.2f GB host pinned\n",
		float64(mem.DeviceBytes())/1e9, float64(mem.PoolBytes[hmms.PoolHost])/1e9)
	fmt.Printf("trace:      %s (%d events; open in chrome://tracing)\n", *out, tr.Len())
	fmt.Printf("metrics:    %s\n", *metricsOut)
	return nil
}
