package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"splitcnn/internal/benchlog"
)

// cmdBenchdiff is the performance-regression gate: it compares the
// latest run in each benchmark log against a baseline run (the
// previous one by default) and fails when any shared metric regresses
// past its threshold:
//
//	splitcnn benchdiff -files BENCH_kernels.json,BENCH_serve.json -threshold 0.25
//
// Direction is per unit (ns/op, B/op, allocs/op, p99-ms and the
// memory footprints are lower-better; GFLOP/s, GB/s, MB/s and img/s
// higher-better); units the gate does not understand, and benchmarks
// absent from either run, are skipped. A log with fewer than two runs
// passes vacuously — the gate judges deltas, not absolutes.
func cmdBenchdiff(args []string) error {
	fs := flag.NewFlagSet("benchdiff", flag.ExitOnError)
	files := fs.String("files", "BENCH_kernels.json,BENCH_serve.json", "comma-separated benchmark logs to gate")
	def := fs.Float64("threshold", 0.25, "default allowed relative regression per metric (0.25 = 25% worse)")
	perUnit := fs.String("thresholds", "", `per-unit overrides, e.g. "ns/op=0.15,img/s=0.10"`)
	baseIdx := fs.Int("baseline", -1, "run index to use as the baseline (negative = the run before the latest)")
	verbose := fs.Bool("v", false, "also print metrics that did not regress")
	if err := fs.Parse(args); err != nil {
		return err
	}
	overrides := map[string]float64{}
	if *perUnit != "" {
		for _, kv := range strings.Split(*perUnit, ",") {
			unit, val, ok := strings.Cut(kv, "=")
			if !ok {
				return fmt.Errorf("benchdiff: bad -thresholds entry %q (want unit=fraction)", kv)
			}
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return fmt.Errorf("benchdiff: bad -thresholds value %q: %w", kv, err)
			}
			overrides[strings.TrimSpace(unit)] = f
		}
	}

	totalRegressions := 0
	for _, path := range strings.Split(*files, ",") {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		log, err := benchlog.Read(path)
		if err != nil {
			if os.IsNotExist(err) {
				fmt.Printf("%s: missing, skipped\n", path)
				continue
			}
			return fmt.Errorf("benchdiff: %w", err)
		}
		if len(log.Runs) < 2 {
			fmt.Printf("%s: %d run(s), nothing to compare\n", path, len(log.Runs))
			continue
		}
		cur := log.Runs[len(log.Runs)-1]
		bi := *baseIdx
		if bi < 0 {
			bi = len(log.Runs) - 2
		}
		if bi >= len(log.Runs)-1 {
			return fmt.Errorf("benchdiff: %s: baseline index %d is not before the latest run %d", path, bi, len(log.Runs)-1)
		}
		base := log.Runs[bi]
		res := benchlog.Diff(base, cur, *def, overrides)

		fmt.Printf("%s: run %d (%s) vs baseline %d (%s): %d metrics compared, %d regressed\n",
			path, len(log.Runs)-1, orUnlabeled(cur.Label), bi, orUnlabeled(base.Label),
			res.Compared, res.Regressions)
		if res.Compared == 0 {
			fmt.Printf("  (no shared benchmarks with gateable units)\n")
		}
		for _, d := range res.Deltas {
			if !d.Regressed && !*verbose {
				continue
			}
			mark := "ok  "
			if d.Regressed {
				mark = "FAIL"
			}
			fmt.Printf("  %s %-40s %-14s %12.4g -> %-12.4g %+6.1f%% (limit %.0f%%)\n",
				mark, d.Benchmark, d.Unit, d.Base, d.New, 100*d.Change, 100*d.Limit)
		}
		totalRegressions += res.Regressions
	}
	if totalRegressions > 0 {
		return fmt.Errorf("benchdiff: %d metric(s) regressed past threshold", totalRegressions)
	}
	return nil
}

func orUnlabeled(label string) string {
	if label == "" {
		return "unlabeled"
	}
	return label
}
