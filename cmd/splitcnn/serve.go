package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"splitcnn/internal/distserve"
	"splitcnn/internal/models"
	"splitcnn/internal/serve"
	"splitcnn/internal/trace"
)

// specFlags are the model-selection flags shared by `serve` and
// `loadtest -spawn`.
type specFlags struct {
	model    *string
	arch     *string
	widthDiv *int
	classes  *int
	inC      *int
	inH      *int
	inW      *int
	snapshot *string
	maxBatch *int
	compiled *bool
	tune     *bool
	tuneCach *string
}

func addSpecFlags(fs *flag.FlagSet) *specFlags {
	return &specFlags{
		model:    fs.String("model", "", "model description file (overrides -arch)"),
		arch:     fs.String("arch", "vgg19", "built-in architecture"),
		widthDiv: fs.Int("widthdiv", 16, "channel width divisor (with -arch)"),
		classes:  fs.Int("classes", 10, "classifier width (with -arch)"),
		inC:      fs.Int("inc", 3, "input channels (with -arch)"),
		inH:      fs.Int("inh", 32, "input height (with -arch)"),
		inW:      fs.Int("inw", 32, "input width (with -arch)"),
		snapshot: fs.String("snapshot", "", "weight snapshot to restore (from `splitcnn train -save`)"),
		maxBatch: fs.Int("maxbatch", 8, "executor batch size = batching cap"),
		compiled: fs.Bool("compiled", false, "serve through the compiled static program (fused ops + fixed-offset memory plan); logits are bit-identical"),
		tune:     fs.Bool("tune", false, "autotune the convolution backends at load (see `splitcnn tune`)"),
		tuneCach: fs.String("tunecache", "", `autotune plan cache file (with -tune; "" = ~/.cache/splitcnn/autotune.json, "off" = no persistence)`),
	}
}

func (sf *specFlags) spec() (serve.Spec, error) {
	s := serve.Spec{
		Snapshot: *sf.snapshot,
		MaxBatch: *sf.maxBatch,
		Compiled: *sf.compiled,
		Tune:     *sf.tune,
	}
	if s.Tune {
		path, err := tuneCachePath(*sf.tuneCach)
		if err != nil {
			return serve.Spec{}, err
		}
		s.TuneCache = path
	}
	if *sf.model != "" {
		s.ModelFile = *sf.model
		s.Name = filepath.Base(*sf.model)
	} else {
		s.Arch = *sf.arch
		s.Name = *sf.arch
		s.Model = models.Config{
			Classes: *sf.classes,
			InputC:  *sf.inC, InputH: *sf.inH, InputW: *sf.inW,
			WidthDiv: *sf.widthDiv, BatchNorm: true,
		}
	}
	return s, nil
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	sf := addSpecFlags(fs)
	maxDelay := fs.Duration("maxdelay", 2*time.Millisecond, "max wait for a batch to fill")
	queue := fs.Int("queue", 0, "admission queue depth (0 = 4x maxbatch)")
	timeout := fs.Duration("timeout", 2*time.Second, "per-request deadline (queue wait + execution)")
	logJSON := fs.Bool("logjson", false, "emit request/lifecycle logs as JSON instead of text")
	traceSample := fs.Float64("tracesample", 0, "fraction of requests recording wall-clock stage spans (0 disables /tracez)")
	traceOut := fs.String("traceout", "", "write the accumulated request trace (Chrome trace_event JSON) here on shutdown")
	pprofOn := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	runtimeEvery := fs.Duration("runtimemetrics", 10*time.Second, "runtime.*/arena.* gauge sampling interval (0 disables)")
	smoke := fs.Bool("smoke", false, "self-test: serve on a random port, answer one self-issued request, exit")
	memsmoke := fs.Bool("memsmoke", false, "self-test: exercise the memory observability plane (per-op /profilez attribution, measured-vs-planned invariant, cluster memory federation), exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *memsmoke {
		return memSmoke()
	}
	if *smoke {
		// The smoke run asserts on the observability surface, so it is
		// exercised regardless of flags.
		if *traceSample <= 0 {
			*traceSample = 1
		}
		*runtimeEvery = 50 * time.Millisecond
	}
	spec, err := sf.spec()
	if err != nil {
		return err
	}
	reg, err := serve.NewRegistry(spec)
	if err != nil {
		return err
	}
	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	srv := serve.NewServer(reg, serve.Options{
		MaxDelay:               *maxDelay,
		QueueDepth:             *queue,
		RequestTimeout:         *timeout,
		Metrics:                trace.NewMetrics(),
		Logger:                 slog.New(handler),
		TraceSample:            *traceSample,
		EnablePprof:            *pprofOn,
		RuntimeMetricsInterval: *runtimeEvery,
	})
	bind := *addr
	if *smoke {
		bind = "127.0.0.1:0" // never collide with a real deployment
	}
	bound, err := srv.Start(bind)
	if err != nil {
		return err
	}
	inst, _ := reg.Lookup("")
	fmt.Printf("serving %q (%dx%dx%d -> %d classes, max batch %d) on http://%s\n",
		inst.Name, inst.C, inst.H, inst.W, inst.Classes, inst.MaxBatch, bound)

	if *smoke {
		return serveSmoke(srv, "http://"+bound.String(), inst)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("draining...")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	if *traceOut != "" && srv.Tracer() != nil {
		if err := srv.Tracer().WriteFile(*traceOut); err != nil {
			return err
		}
		fmt.Printf("request trace: %s (%d sampled requests; open in chrome://tracing)\n",
			*traceOut, srv.Tracer().Sampled())
	}
	return nil
}

// serveSmoke exercises the live server end to end through its own HTTP
// surface — predict, healthz, metricsz — then drains. It is the CI
// `make serve-smoke` target, so it depends on nothing but this binary.
func serveSmoke(srv *serve.Server, base string, inst *serve.Instance) error {
	body, _ := json.Marshal(serve.PredictRequest{Image: make([]float32, inst.ImageLen())})
	resp, err := http.Post(base+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("smoke: predict: %w", err)
	}
	var pr serve.PredictResponse
	err = json.NewDecoder(resp.Body).Decode(&pr)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("smoke: predict decode: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("smoke: predict status %d", resp.StatusCode)
	}
	if len(pr.Logits) != inst.Classes {
		return fmt.Errorf("smoke: got %d logits, want %d", len(pr.Logits), inst.Classes)
	}
	for _, path := range []string{"/healthz", "/metricsz", "/tracez"} {
		resp, err := http.Get(base + path)
		if err != nil {
			return fmt.Errorf("smoke: %s: %w", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("smoke: %s status %d", path, resp.StatusCode)
		}
	}
	if n := srv.Metrics().Counter("serve.requests").Value(); n != 1 {
		return fmt.Errorf("smoke: serve.requests = %d, want 1", n)
	}

	// Build provenance: /healthz names the toolchain that built us.
	resp, err = http.Get(base + "/healthz")
	if err != nil {
		return fmt.Errorf("smoke: healthz: %w", err)
	}
	var health struct {
		GoVersion string `json:"go_version"`
	}
	err = json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if err != nil || health.GoVersion == "" {
		return fmt.Errorf("smoke: healthz lacks build info (err=%v)", err)
	}

	// Prometheus exposition: a text/plain Accept must negotiate the
	// 0.0.4 format with the latency histogram's cumulative buckets.
	req, _ := http.NewRequest(http.MethodGet, base+"/metricsz", nil)
	req.Header.Set("Accept", "text/plain")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		return fmt.Errorf("smoke: prometheus scrape: %w", err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		return fmt.Errorf("smoke: prometheus content type %q", ct)
	}
	for _, want := range []string{
		"# TYPE serve_latency_seconds histogram",
		`serve_latency_seconds_bucket{le="+Inf"} 1`,
		"serve_requests 1",
		"runtime_heap_alloc_bytes",
	} {
		if !strings.Contains(string(prom), want) {
			return fmt.Errorf("smoke: prometheus exposition missing %q", want)
		}
	}

	// Request tracing: the sampled request must have recorded at least
	// four distinct serving-stage spans sharing its request ID. The
	// handler finishes the span just after writing the response, so
	// allow it a moment to land.
	ok := false
	var events []trace.Event
	var byID map[string]map[string]bool
	for wait := 0; wait < 100 && !ok; wait++ {
		events = srv.Tracer().Trace().Events()
		byID = map[string]map[string]bool{}
		for _, e := range events {
			if id, _ := e.Args["request"].(string); id != "" {
				if byID[id] == nil {
					byID[id] = map[string]bool{}
				}
				byID[id][e.Cat] = true
			}
		}
		for _, stages := range byID {
			if len(stages) >= 4 {
				ok = true
			}
		}
		if !ok {
			time.Sleep(10 * time.Millisecond)
		}
	}
	if !ok {
		return fmt.Errorf("smoke: no request with >= 4 trace stages (got %d events across %d requests)",
			len(events), len(byID))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("smoke: shutdown: %w", err)
	}
	fmt.Printf("serve smoke ok: argmax %d, batch %d, latency %d us\n",
		pr.Argmax, pr.BatchSize, pr.LatencyUs)
	return nil
}

func cmdLoadtest(args []string) error {
	fs := flag.NewFlagSet("loadtest", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "server address (host:port)")
	targetURL := fs.String("target", "", "base URL of the endpoint to test, e.g. http://10.0.0.2:8080 (overrides -addr; scheme optional)")
	spawn := fs.Bool("spawn", false, "serve in-process on a random port and loadtest that")
	spawnWorkers := fs.Int("spawnworkers", 0, "spawn a distributed fleet (router over N in-process shard workers) and loadtest that")
	sf := addSpecFlags(fs)
	maxDelay := fs.Duration("maxdelay", 2*time.Millisecond, "batching delay (with -spawn)")
	conc := fs.Int("c", 8, "concurrent closed-loop clients")
	total := fs.Int("n", 256, "total requests")
	benchName := fs.String("bench", "ServeLoadtest", "name for the emitted Benchmark result line")
	if err := fs.Parse(args); err != nil {
		return err
	}
	target := *addr
	if *spawnWorkers > 0 {
		spec, err := sf.spec()
		if err != nil {
			return err
		}
		var addrs []string
		for i := 0; i < *spawnWorkers; i++ {
			w, err := distserve.StartWorker("127.0.0.1:0", distserve.WorkerConfig{
				Spec: spec, MaxPods: 2 * *conc, // loadtest measures latency, not admission control
			})
			if err != nil {
				return fmt.Errorf("loadtest: spawn worker %d: %w", i, err)
			}
			defer w.Close()
			addrs = append(addrs, w.Addr())
		}
		rt, err := distserve.NewRouter(distserve.RouterOptions{
			Spec: spec, Workers: addrs,
			TailExecutors:          *conc,
			RequestTimeout:         60 * time.Second,
			RuntimeMetricsInterval: 100 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		bound, err := rt.Start("127.0.0.1:0")
		if err != nil {
			return err
		}
		target = bound.String()
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			rt.Shutdown(ctx)
		}()
	} else if *spawn {
		spec, err := sf.spec()
		if err != nil {
			return err
		}
		reg, err := serve.NewRegistry(spec)
		if err != nil {
			return err
		}
		srv := serve.NewServer(reg, serve.Options{
			MaxDelay:               *maxDelay,
			QueueDepth:             2 * *total, // loadtest measures latency, not admission control
			RequestTimeout:         60 * time.Second,
			RuntimeMetricsInterval: 100 * time.Millisecond,
		})
		bound, err := srv.Start("127.0.0.1:0")
		if err != nil {
			return err
		}
		target = bound.String()
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		}()
	}
	base := "http://" + target
	if *targetURL != "" {
		if *spawn || *spawnWorkers > 0 {
			return fmt.Errorf("loadtest: -target is mutually exclusive with -spawn/-spawnworkers")
		}
		base = *targetURL
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		base = strings.TrimSuffix(base, "/")
	}

	// Discover the default model's input geometry from the server.
	resp, err := http.Get(base + "/v1/models")
	if err != nil {
		return fmt.Errorf("loadtest: %s unreachable: %w", base, err)
	}
	var infos []serve.ModelInfo
	err = json.NewDecoder(resp.Body).Decode(&infos)
	resp.Body.Close()
	if err != nil || len(infos) == 0 {
		return fmt.Errorf("loadtest: bad /v1/models response (err=%v)", err)
	}
	info := infos[0]
	imageLen := info.Input[0] * info.Input[1] * info.Input[2]
	body, _ := json.Marshal(serve.PredictRequest{
		Model: info.Name, Image: make([]float32, imageLen),
	})

	type stats struct {
		lat     []time.Duration
		batches int64
		errs    int
	}
	per := make([]stats, *conc)

	// Memory footprint of the run, scraped from the target's own
	// /metricsz: peak heap is polled while the load runs (it rises and
	// falls with GC), the arena high water is monotone and read once at
	// the end.
	var peakHeap float64
	memStop := make(chan struct{})
	memDone := make(chan struct{})
	go func() {
		defer close(memDone)
		t := time.NewTicker(100 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-memStop:
				return
			case <-t.C:
				if g, err := scrapeGauges(base); err == nil {
					if v := g["runtime.heap_alloc_bytes"]; v > peakHeap {
						peakHeap = v
					}
				}
			}
		}
	}()

	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *conc; w++ {
		n := *total / *conc
		if w < *total%*conc {
			n++
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			st := &per[w]
			for i := 0; i < n; i++ {
				t0 := time.Now()
				resp, err := http.Post(base+"/v1/predict", "application/json", bytes.NewReader(body))
				if err != nil {
					st.errs++
					continue
				}
				var pr serve.PredictResponse
				derr := json.NewDecoder(resp.Body).Decode(&pr)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || derr != nil {
					st.errs++
					continue
				}
				st.lat = append(st.lat, time.Since(t0))
				st.batches += int64(pr.BatchSize)
			}
		}(w, n)
	}
	wg.Wait()
	wall := time.Since(start)
	close(memStop)
	<-memDone
	var arenaHW float64
	if g, err := scrapeGauges(base); err == nil {
		if v := g["runtime.heap_alloc_bytes"]; v > peakHeap {
			peakHeap = v
		}
		arenaHW = g["arena.high_water_bytes"]
	}

	var lat []time.Duration
	var batches int64
	errs := 0
	for i := range per {
		lat = append(lat, per[i].lat...)
		batches += per[i].batches
		errs += per[i].errs
	}
	if len(lat) == 0 {
		return fmt.Errorf("loadtest: all %d requests failed", *total)
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	var sum time.Duration
	for _, l := range lat {
		sum += l
	}
	mean := sum / time.Duration(len(lat))
	p50 := lat[len(lat)/2]
	p99 := lat[len(lat)*99/100]
	throughput := float64(len(lat)) / wall.Seconds()
	avgBatch := float64(batches) / float64(len(lat))

	fmt.Printf("loadtest %s: %d ok, %d errors, %d clients, %.2fs wall\n",
		base, len(lat), errs, *conc, wall.Seconds())
	fmt.Printf("throughput %.1f img/s, latency mean %.2fms p50 %.2fms p99 %.2fms, mean batch %.2f\n",
		throughput, ms(mean), ms(p50), ms(p99), avgBatch)
	// When the target is a distributed router, record the fleet shape in
	// the benchmark metadata: worker count from its /v1/workers and the
	// gang size (mean shards answering per request — the response
	// BatchSize on the distributed path). Single-process servers have no
	// /v1/workers and emit the classic line.
	fleet := ""
	if resp, err := http.Get(base + "/v1/workers"); err == nil {
		var ws []json.RawMessage
		if resp.StatusCode == http.StatusOK && json.NewDecoder(resp.Body).Decode(&ws) == nil && len(ws) > 0 {
			fleet = fmt.Sprintf(" %8d workers %8.2f gang-size", len(ws), avgBatch)
		}
		resp.Body.Close()
	}
	// Memory metrics ride on the same line when the target's runtime
	// sampler exposed them, so the committed BENCH_serve.json trajectory
	// (and the benchdiff gate) covers footprint as well as latency.
	mem := ""
	if peakHeap > 0 {
		mem = fmt.Sprintf(" %10.2f peak-heap-MiB", peakHeap/(1<<20))
	}
	if arenaHW > 0 {
		mem += fmt.Sprintf(" %10.2f arena-hw-MiB", arenaHW/(1<<20))
	}
	// A `go test -bench`-shaped line, so the run can be appended to the
	// benchmark log: splitcnn loadtest ... | benchjson -o BENCH_serve.json
	fmt.Printf("Benchmark%s %8d %12.0f ns/op %12.1f img/s %10.3f p99-ms %8.2f avg-batch%s%s\n",
		*benchName, len(lat), float64(mean.Nanoseconds()), throughput, ms(p99), avgBatch, fleet, mem)
	if errs > 0 {
		return fmt.Errorf("loadtest: %d of %d requests failed", errs, *total)
	}
	return nil
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// scrapeGauges fetches the target's /metricsz JSON and returns its
// gauge map.
func scrapeGauges(base string) (map[string]float64, error) {
	resp, err := http.Get(base + "/metricsz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("metricsz status %d", resp.StatusCode)
	}
	var snap struct {
		Gauges map[string]float64 `json:"gauges"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, err
	}
	return snap.Gauges, nil
}
