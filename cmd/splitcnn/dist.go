package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"splitcnn/internal/distserve"
	"splitcnn/internal/report"
	"splitcnn/internal/serve"
	"splitcnn/internal/trace"
)

func cmdWorker(args []string) error {
	fs := flag.NewFlagSet("worker", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:9090", "RPC listen address (host:port; :0 for a random port)")
	sf := addSpecFlags(fs)
	maxPods := fs.Int("maxpods", 4, "max concurrent shard evaluations (per-pod capacity limit)")
	logJSON := fs.Bool("logjson", false, "emit lifecycle logs as JSON instead of text")
	traceSample := fs.Float64("tracesample", 0, "fraction of shard evaluations recording per-stage wall spans")
	debugAddr := fs.String("debugaddr", "", "HTTP debug listener (host:port; :0 for a random port) serving /healthz, /metricsz and the continuous profiler's /profilez")
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, err := sf.spec()
	if err != nil {
		return err
	}
	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	w, err := distserve.StartWorker(*addr, distserve.WorkerConfig{
		Spec:        spec,
		MaxPods:     *maxPods,
		Metrics:     trace.NewMetrics(),
		Logger:      slog.New(handler),
		TraceSample: *traceSample,
		DebugAddr:   *debugAddr,
	})
	if err != nil {
		return err
	}
	p := w.Plan()
	fmt.Printf("shard worker %q (%d stages, tail %q, max pods %d) on %s\n",
		spec.Name, len(p.Stages), p.Tail, *maxPods, w.Addr())
	if w.DebugAddr() != "" {
		fmt.Printf("debug surface on http://%s/ (healthz, metricsz, profilez)\n", w.DebugAddr())
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("stopping...")
	return w.Close()
}

func cmdRouter(args []string) error {
	fs := flag.NewFlagSet("router", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "HTTP listen address")
	workersFlag := fs.String("workers", "", "comma-separated shard-worker RPC addresses")
	spawn := fs.Int("spawn", 0, "spawn this many in-process loopback workers instead of -workers")
	sf := addSpecFlags(fs)
	shards := fs.Int("shards", 0, "max shards per request (0 = all workers)")
	timeout := fs.Duration("timeout", 2*time.Second, "per-request deadline (scatter + gather + tail)")
	retries := fs.Int("retries", 2, "gang re-dispatch attempts after a worker failure")
	logJSON := fs.Bool("logjson", false, "emit request/lifecycle logs as JSON instead of text")
	traceSample := fs.Float64("tracesample", 0, "fraction of requests recording wall-clock stage spans (0 disables /tracez)")
	slo := fs.String("slo", "", `latency/error SLO publishing burn-rate gauges on /metricsz, e.g. "p99=50ms,err=0.1%"`)
	smoke := fs.Bool("smoke", false, "self-test: spawn loopback workers, verify bit-identity with single-process serve plus crash recovery and a federated observability pass, exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *smoke {
		if *spawn <= 0 {
			*spawn = 4
		}
		*addr = "127.0.0.1:0"
		*timeout = 30 * time.Second
		if *traceSample <= 0 {
			*traceSample = 1
		}
		if *slo == "" {
			*slo = "p99=500ms,err=1%"
		}
	}
	spec, err := sf.spec()
	if err != nil {
		return err
	}
	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	logger := slog.New(handler)

	var workers []*distserve.Worker
	addrs := splitComma(*workersFlag)
	if *spawn > 0 {
		if len(addrs) != 0 {
			return fmt.Errorf("router: -spawn and -workers are mutually exclusive")
		}
		for i := 0; i < *spawn; i++ {
			w, err := distserve.StartWorker("127.0.0.1:0", distserve.WorkerConfig{
				Spec: spec, Logger: logger,
			})
			if err != nil {
				return fmt.Errorf("router: spawn worker %d: %w", i, err)
			}
			defer w.Close()
			workers = append(workers, w)
			addrs = append(addrs, w.Addr())
		}
	}
	if len(addrs) == 0 {
		return fmt.Errorf("router: no workers (use -workers host:port,... or -spawn N)")
	}
	rt, err := distserve.NewRouter(distserve.RouterOptions{
		Spec:           spec,
		Workers:        addrs,
		MaxShards:      *shards,
		RequestTimeout: *timeout,
		Retries:        *retries,
		Metrics:        trace.NewMetrics(),
		Logger:         logger,
		TraceSample:    *traceSample,
		SLO:            *slo,
	})
	if err != nil {
		return err
	}
	bound, err := rt.Start(*addr)
	if err != nil {
		return err
	}
	p := rt.Plan()
	fmt.Printf("router %q (%d shardable stages, tail %q) over %d workers on http://%s\n",
		spec.Name, len(p.Stages), p.Tail, len(addrs), bound)

	if *smoke {
		return routerSmoke(rt, spec, "http://"+bound.String(), workers)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("draining...")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return rt.Shutdown(ctx)
}

func splitComma(s string) []string {
	var out []string
	for _, part := range bytes.Split([]byte(s), []byte(",")) {
		if p := string(bytes.TrimSpace(part)); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// routerSmoke is the CI `make dist-smoke` target: a four-worker
// loopback gang must answer bit-identically to the single-process
// serving path, keep answering after one worker is killed mid-fleet,
// and expose sane health/worker/metrics surfaces — all through real TCP
// RPC and real HTTP, inside this one process.
func routerSmoke(rt *distserve.Router, spec serve.Spec, base string, workers []*distserve.Worker) error {
	if len(workers) < 2 {
		return fmt.Errorf("smoke: needs -spawn >= 2, got %d workers", len(workers))
	}
	// Reference: the single-process serving path on the same spec.
	inst, err := serve.Load(spec)
	if err != nil {
		return fmt.Errorf("smoke: reference instance: %w", err)
	}
	img := make([]float32, inst.ImageLen())
	for i := range img {
		// Deterministic pseudo-image; any fixed pattern works.
		img[i] = float32(math.Sin(float64(i))) * 0.5
	}
	ref, err := inst.Run([][]float32{img})
	if err != nil {
		return fmt.Errorf("smoke: reference run: %w", err)
	}
	want := ref[0]

	predict := func() (serve.PredictResponse, error) {
		body, _ := json.Marshal(serve.PredictRequest{Image: img})
		resp, err := http.Post(base+"/v1/predict", "application/json", bytes.NewReader(body))
		if err != nil {
			return serve.PredictResponse{}, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			return serve.PredictResponse{}, fmt.Errorf("predict status %d: %s", resp.StatusCode, b)
		}
		var pr serve.PredictResponse
		return pr, json.NewDecoder(resp.Body).Decode(&pr)
	}
	check := func(pr serve.PredictResponse, phase string) error {
		if len(pr.Logits) != len(want) {
			return fmt.Errorf("smoke (%s): %d logits, want %d", phase, len(pr.Logits), len(want))
		}
		for i := range want {
			if math.Float32bits(pr.Logits[i]) != math.Float32bits(want[i]) {
				return fmt.Errorf("smoke (%s): logit %d = %g, single-process serve says %g (not bit-identical)",
					phase, i, pr.Logits[i], want[i])
			}
		}
		return nil
	}

	pr, err := predict()
	if err != nil {
		return fmt.Errorf("smoke: %w", err)
	}
	if err := check(pr, "full fleet"); err != nil {
		return err
	}
	if pr.BatchSize < 2 {
		return fmt.Errorf("smoke: answered by %d shards, want a real gang", pr.BatchSize)
	}
	if err := smokeObservability(rt, base, workers, pr.BatchSize, predict); err != nil {
		return err
	}

	// Kill one worker; the fleet must keep answering bit-identically.
	workers[0].Close()
	pr, err = predict()
	if err != nil {
		return fmt.Errorf("smoke after worker kill: %w", err)
	}
	if err := check(pr, "degraded fleet"); err != nil {
		return err
	}

	// Introspection surfaces.
	for _, path := range []string{"/healthz", "/v1/models", "/v1/workers", "/metricsz", "/tracez"} {
		resp, err := http.Get(base + path)
		if err != nil {
			return fmt.Errorf("smoke: %s: %w", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("smoke: %s status %d", path, resp.StatusCode)
		}
	}
	if n := rt.Metrics().Counter("dist.requests").Value(); n < 2 {
		return fmt.Errorf("smoke: dist.requests = %d, want >= 2", n)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := rt.Shutdown(ctx); err != nil {
		return fmt.Errorf("smoke: shutdown: %w", err)
	}
	fmt.Printf("dist smoke ok: %d workers, %d shards/request, argmax %d, bit-identical to single-process serve (incl. after 1 worker kill)\n",
		len(workers), pr.BatchSize, pr.Argmax)
	return nil
}

// smokeObservability exercises the cluster observability plane against
// the live full-strength fleet: /clusterz federation is scraped
// mid-load (per-worker series must be present and the rollups
// consistent), the post-drain rollups must match the per-worker
// registries exactly, /tracez must hold a stitched multi-process
// timeline whose plotted critical path equals the measured request
// span, and the SLO burn-rate gauges must be published.
func smokeObservability(rt *distserve.Router, base string, workers []*distserve.Worker, gang int, predict func() (serve.PredictResponse, error)) error {
	// Background load keeps the gang busy while /clusterz is scraped.
	stop := make(chan struct{})
	var lwg sync.WaitGroup
	for i := 0; i < 2; i++ {
		lwg.Add(1)
		go func() {
			defer lwg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					if _, err := predict(); err != nil {
						return
					}
				}
			}
		}()
	}
	get := func(path string) (string, error) {
		resp, err := http.Get(base + path)
		if err != nil {
			return "", err
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err == nil && resp.StatusCode != http.StatusOK {
			err = fmt.Errorf("status %d", resp.StatusCode)
		}
		return string(b), err
	}
	prom, promErr := get("/clusterz?format=prom")
	close(stop)
	lwg.Wait()
	if promErr != nil {
		return fmt.Errorf("smoke: /clusterz scrape: %w", promErr)
	}
	for _, w := range workers {
		series := fmt.Sprintf("dist_worker_requests{worker=%q}", w.Addr())
		if !strings.Contains(prom, series) {
			return fmt.Errorf("smoke: /clusterz missing per-worker series %s", series)
		}
	}
	for _, want := range []string{"cluster_requests_consistent 1", "cluster_gang_occupancy", "cluster_straggler_p99"} {
		if !strings.Contains(prom, want) {
			return fmt.Errorf("smoke: mid-load /clusterz missing %q", want)
		}
	}

	// Post-drain the rollups must equal the per-worker registries.
	body, err := get("/clusterz?format=json")
	if err != nil {
		return fmt.Errorf("smoke: /clusterz json: %w", err)
	}
	var view struct {
		Workers map[string]trace.Snapshot `json:"workers"`
		Cluster trace.Snapshot            `json:"cluster"`
	}
	if err := json.Unmarshal([]byte(body), &view); err != nil {
		return fmt.Errorf("smoke: /clusterz json decode: %w", err)
	}
	var sumReq int64
	for _, snap := range view.Workers {
		sumReq += snap.Counters["dist.worker.requests"]
	}
	total := int64(view.Cluster.Gauges["cluster.worker_requests_total"])
	dispatched := int64(view.Cluster.Gauges["cluster.router_dispatches_total"])
	if sumReq != total || total != dispatched || view.Cluster.Gauges["cluster.requests_consistent"] != 1 {
		return fmt.Errorf("smoke: rollup inconsistency: sum(worker requests)=%d, cluster total=%d, router dispatched=%d",
			sumReq, total, dispatched)
	}

	// Cross-process stitching: /tracez must carry one unified timeline —
	// the router row plus every shard's — that survives the report
	// layer's critical-path self-verification. The export lands just
	// after the HTTP response, so poll briefly.
	var sum report.DistSummary
	deadline := time.Now().Add(5 * time.Second)
	for {
		raw, err := get("/tracez")
		if err != nil {
			return fmt.Errorf("smoke: /tracez: %w", err)
		}
		var events []trace.Event
		if err := json.Unmarshal([]byte(raw), &events); err != nil {
			return fmt.Errorf("smoke: /tracez decode: %w", err)
		}
		if _, s, err := report.DistReport("smoke", events, ""); err == nil {
			sum = s
			if s.Processes == gang+1 && s.Verify() == nil {
				break
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("smoke: no stitched %d-process trace on /tracez (last: %d processes, %d spans)",
				gang+1, sum.Processes, sum.Spans)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if n := rt.Metrics().Counter("dist.stitch_errors").Value(); n != 0 {
		return fmt.Errorf("smoke: dist.stitch_errors = %d, want 0", n)
	}

	// SLO burn-rate gauges ride /metricsz.
	metz, err := get("/metricsz")
	if err != nil {
		return fmt.Errorf("smoke: /metricsz: %w", err)
	}
	for _, want := range []string{"slo.latency_burn_5m", "slo.error_burn_1h", "dist.clock_skew_seconds"} {
		if !strings.Contains(metz, want) {
			return fmt.Errorf("smoke: /metricsz missing %q", want)
		}
	}
	fmt.Printf("observability ok: stitched request %s (%d processes, critical path %s), rollups consistent over %d workers\n",
		sum.Request, sum.Processes, report.HumanSeconds(sum.PlottedSeconds), len(view.Workers))
	return nil
}
