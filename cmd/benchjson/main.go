// benchjson converts `go test -bench` output on stdin into a JSON
// record and appends it to a running benchmark log (BENCH_kernels.json
// by default). Each `make bench-kernels` run adds one entry, so the
// file accumulates the kernel-performance trajectory across PRs
// instead of only holding the latest numbers. The schema and parser
// live in internal/benchlog, shared with the `splitcnn benchdiff`
// regression gate.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"splitcnn/internal/benchlog"
)

func main() {
	out := flag.String("o", "BENCH_kernels.json", "log file to append the run to")
	label := flag.String("label", "", "label for this run (e.g. a short change description)")
	date := flag.String("date", "", "date stamp for this run")
	flag.Parse()

	run := benchlog.Run{
		Label:    *label,
		Date:     *date,
		Go:       runtime.Version(),
		MaxProcs: runtime.GOMAXPROCS(0),
	}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass through so the run stays visible
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			run.CPU = strings.TrimSpace(cpu)
			continue
		}
		if b, ok := benchlog.ParseLine(line, run.MaxProcs); ok {
			run.Benchmarks = append(run.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(run.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines on stdin"))
	}

	log, err := benchlog.Read(*out)
	if err != nil {
		if !os.IsNotExist(err) {
			fatal(err)
		}
		log = &benchlog.Log{}
	}
	log.Runs = append(log.Runs, run)
	if err := benchlog.Write(*out, log); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: appended %d benchmarks to %s (%d runs)\n",
		len(run.Benchmarks), *out, len(log.Runs))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
