// benchjson converts `go test -bench` output on stdin into a JSON
// record and appends it to a running benchmark log (BENCH_kernels.json
// by default). Each `make bench-kernels` run adds one entry, so the
// file accumulates the kernel-performance trajectory across PRs
// instead of only holding the latest numbers.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one `BenchmarkName  N  metrics...` result line.
type Benchmark struct {
	Name string `json:"name"`
	N    int64  `json:"n"`
	// Metrics maps unit -> value, e.g. "ns/op": 4.7e6, "GFLOP/s": 57.3.
	Metrics map[string]float64 `json:"metrics"`
}

// Run is one invocation of the benchmark suite.
type Run struct {
	Label      string      `json:"label,omitempty"`
	Date       string      `json:"date,omitempty"`
	Go         string      `json:"go"`
	CPU        string      `json:"cpu,omitempty"`
	MaxProcs   int         `json:"gomaxprocs"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Log is the on-disk shape of BENCH_kernels.json.
type Log struct {
	Comment string `json:"comment,omitempty"`
	Runs    []Run  `json:"runs"`
}

func main() {
	out := flag.String("o", "BENCH_kernels.json", "log file to append the run to")
	label := flag.String("label", "", "label for this run (e.g. a short change description)")
	date := flag.String("date", "", "date stamp for this run")
	flag.Parse()

	run := Run{
		Label:    *label,
		Date:     *date,
		Go:       runtime.Version(),
		MaxProcs: runtime.GOMAXPROCS(0),
	}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass through so the run stays visible
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			run.CPU = strings.TrimSpace(cpu)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		n, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{
			// Strip the -GOMAXPROCS suffix so names compare across machines.
			Name:    strings.TrimSuffix(fields[0], fmt.Sprintf("-%d", runtime.GOMAXPROCS(0))),
			N:       n,
			Metrics: map[string]float64{},
		}
		for i := 2; i+1 < len(fields); i += 2 {
			if v, err := strconv.ParseFloat(fields[i], 64); err == nil {
				b.Metrics[fields[i+1]] = v
			}
		}
		run.Benchmarks = append(run.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(run.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines on stdin"))
	}

	var log Log
	if raw, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(raw, &log); err != nil {
			fatal(fmt.Errorf("%s exists but is not a benchjson log: %w", *out, err))
		}
	}
	log.Runs = append(log.Runs, run)
	enc, err := json.MarshalIndent(&log, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: appended %d benchmarks to %s (%d runs)\n",
		len(run.Benchmarks), *out, len(log.Runs))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
