module splitcnn

go 1.24
