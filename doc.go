// Package splitcnn is a from-scratch Go reproduction of "Split-CNN:
// Splitting Window-based Operations in Convolutional Neural Networks for
// Memory System Optimization" (Jin & Hong, ASPLOS 2019).
//
// The implementation lives under internal/: a dense-tensor library and
// computation-graph IR with reverse-mode autodiff (internal/tensor,
// internal/graph), CNN layers and model builders (internal/nn,
// internal/models), the Split-CNN graph transformation (internal/core),
// the HMMS memory planner (internal/hmms), an analytical device model
// and discrete-event simulator standing in for the paper's P100+NVLink
// testbed (internal/costmodel, internal/device-level logic in
// internal/sim), CPU training (internal/train, internal/data), the
// distributed-training projection (internal/dist), and one driver per
// paper figure/table (internal/experiments).
//
// bench_test.go in this directory regenerates every table and figure of
// the paper's evaluation; see README.md, DESIGN.md and EXPERIMENTS.md.
package splitcnn
