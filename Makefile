# Development targets for the Split-CNN + HMMS reproduction.
# `make ci` is what a pre-merge check should run.

GO ?= go

.PHONY: build test race vet fmt ci golden trace

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# fmt fails (and lists the offenders) when any file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needs to be run on:"; echo "$$out"; exit 1; \
	fi

ci: vet fmt build race

# golden regenerates the trace/metrics golden files after an intended
# change to the cost model, planner, simulator or exporters.
golden:
	$(GO) test ./internal/trace -update

# trace is a smoke run of the observability pipeline.
trace: build
	$(GO) run ./cmd/splitcnn trace -model alexnet -policy hmms -o /tmp/splitcnn-trace.json -metrics /tmp/splitcnn-metrics.json
