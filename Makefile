# Development targets for the Split-CNN + HMMS reproduction.
# `make ci` is what a pre-merge check should run.

GO ?= go

.PHONY: build test race vet fmt ci golden trace report-smoke bench-kernels bench-smoke serve-smoke bench-serve bench-dist train-smoke compile-smoke tune-smoke dist-smoke mem-smoke bench-gate

# Kernel micro-benchmarks: the CPU execution engine's hot paths
# (blocked GEMM, im2col, convolution, full arena-backed train step —
# with and without step telemetry).
KERNEL_BENCH = MatMul$$|Im2Col$$|TrainStep$$|TrainStepSteplog$$|Conv2DForward$$|GemmSquare|ConvIm2Col3x3$$|ConvWinograd3x3$$|InterpretedForward$$|CompiledForward$$|Conv2DFFT$$|AutotunedConv$$

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# fmt fails (and lists the offenders) when any file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needs to be run on:"; echo "$$out"; exit 1; \
	fi

ci: vet fmt build race bench-smoke serve-smoke compile-smoke report-smoke train-smoke tune-smoke dist-smoke mem-smoke bench-gate

# bench-kernels measures the kernel micro-benchmarks and appends the
# run to BENCH_kernels.json (the committed perf trajectory). Label the
# run with BENCH_LABEL="short description".
bench-kernels: build
	$(GO) test -run '^$$' -bench '$(KERNEL_BENCH)' -benchtime 2s . ./internal/tensor \
		| $(GO) run ./cmd/benchjson -date "$$(date +%Y-%m-%d)" -label "$(BENCH_LABEL)"

# bench-smoke runs every kernel benchmark exactly once so CI catches
# benchmarks that no longer compile or crash, without paying for a
# full measurement.
bench-smoke:
	@$(GO) test -run '^$$' -bench '$(KERNEL_BENCH)' -benchtime 1x . ./internal/tensor > /dev/null

# serve-smoke boots the inference server on a random port, answers one
# self-issued request through the real HTTP surface, and drains. It
# needs nothing beyond the splitcnn binary (no curl).
serve-smoke:
	$(GO) run ./cmd/splitcnn serve -smoke

# compile-smoke lowers VGG-19 and ResNet-18 through graph.Compile,
# renders the slab-timeline report, and boots the server through the
# compiled path. The subcommand itself verifies the plotted peak
# against the mapped slab size with ==.
compile-smoke:
	$(GO) run ./cmd/splitcnn compile -arch vgg19 -o /tmp/splitcnn-compile.html
	$(GO) run ./cmd/splitcnn compile -arch resnet18
	$(GO) run ./cmd/splitcnn serve -smoke -compiled

# bench-serve load-tests an in-process server and appends the run to
# BENCH_serve.json (the committed serving-performance trajectory).
bench-serve: build
	$(GO) run ./cmd/splitcnn loadtest -spawn -c 16 -n 512 \
		| $(GO) run ./cmd/benchjson -o BENCH_serve.json -date "$$(date +%Y-%m-%d)" -label "$(BENCH_LABEL)"

# bench-dist load-tests a router-fronted loopback fleet (4 shard
# workers) and appends the run next to the single-process numbers in
# BENCH_serve.json, so the distributed path's overhead stays visible in
# the committed trajectory.
bench-dist: build
	$(GO) run ./cmd/splitcnn loadtest -spawnworkers 4 -c 16 -n 512 -bench DistLoadtest \
		| $(GO) run ./cmd/benchjson -o BENCH_serve.json -date "$$(date +%Y-%m-%d)" -label "$(BENCH_LABEL)"

# dist-smoke is the distributed-serving CI gate: a race-enabled
# four-worker loopback fleet answers over real TCP RPC + HTTP, logits
# must be bit-identical to single-process serve — including after one
# worker is killed mid-fleet (ejection + gang retry).
dist-smoke:
	$(GO) run -race ./cmd/splitcnn router -smoke -spawn 4

# mem-smoke is the memory-observability CI gate, race-enabled: a
# compiled single-process server and a two-worker loopback fleet run
# under load while the smoke asserts /profilez serves per-op CPU
# attribution on serve, worker, and router, /metricsz carries the
# measured-memory gauge family and per-request footprint histograms,
# /clusterz federates the workers' heap gauges into cluster.mem.*
# rollups, and the measured timeline never exceeds the static plan.
mem-smoke:
	$(GO) run -race ./cmd/splitcnn serve -memsmoke

# bench-gate compares the latest committed benchmark run against the
# previous one and fails on any metric that regressed past its
# threshold (25% by default; see `splitcnn benchdiff -h`).
bench-gate:
	$(GO) run ./cmd/splitcnn benchdiff

# golden regenerates the trace/metrics golden files after an intended
# change to the cost model, planner, simulator or exporters.
golden:
	$(GO) test ./internal/trace -update

# trace is a smoke run of the observability pipeline.
trace: build
	$(GO) run ./cmd/splitcnn trace -model alexnet -policy hmms -o /tmp/splitcnn-trace.json -metrics /tmp/splitcnn-metrics.json

# train-smoke checks the training-observability pipeline end to end: a
# tiny 2-epoch run streams per-step telemetry with the anomaly guards
# armed (-checksteplog fails on empty or malformed JSONL; a guard trip
# exits non-zero by itself), then the training report page renders from
# the emitted stream.
train-smoke:
	$(GO) run ./cmd/splitcnn train -epochs 2 -train 128 -test 64 \
		-steplog /tmp/splitcnn-steplog.jsonl -checksteplog \
		-guards -flight /tmp/splitcnn-flight.json
	$(GO) run ./cmd/splitcnn report -train /tmp/splitcnn-steplog.jsonl \
		-o /tmp/splitcnn-train.html

# tune-smoke runs the convolution autotuner end to end on a small
# bundled architecture: measure every backend per layer shape, persist
# the plan cache, reload it, and verify every plan survives the round
# trip (the subcommand exits non-zero if any step fails). A second run
# against the same cache must be all cache hits, which it checks by
# grepping the summary line.
tune-smoke:
	$(GO) run ./cmd/splitcnn tune -arch alexnet -inh 64 -inw 64 -batch 4 \
		-trials 1 -tunecache /tmp/splitcnn-autotune.json
	$(GO) run ./cmd/splitcnn tune -arch alexnet -inh 64 -inw 64 -batch 4 \
		-trials 1 -tunecache /tmp/splitcnn-autotune.json \
		| grep "5 cache hits" > /dev/null

# report-smoke renders the HTML/SVG memory timeline for a split VGG-19
# HMMS plan; the subcommand itself verifies the plotted device
# high-water mark against the mem.device_high_water_bytes gauge.
report-smoke:
	$(GO) run ./cmd/splitcnn report -model vgg19 -policy hmms -split -o /tmp/splitcnn-report.html
